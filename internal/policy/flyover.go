// flyover.go — the Flyovers reservation model (Wyss et al.) behind the
// Policy interface: reservations stripped to hop-local short-lived grants.
// There is no end-to-end path state at the ASes and no cross-hop atomicity —
// each hop admits or refuses on its own, and a partial acquisition leaves
// the admitted hops charged until their short lifetime lapses. Renewal IS a
// fresh setup: a new-generation flyover is admitted alongside the old one
// (which is left to expire), so a renewing flow competes with every other
// setup for the freed bandwidth — the model trades the bounded-tube renewal
// guarantee for per-hop statelessness, which the DoC head-to-head
// experiment makes visible.
package policy

import (
	"sort"
	"sync"

	"colibri/internal/reservation"
	"colibri/internal/restree"
)

// foGen is one flyover generation possibly still charged at the hops.
type foGen struct {
	gen, expT uint32
}

// foFlow is the source's record of one flyover-protected flow. The ASes
// hold nothing but the individual per-hop flyovers.
type foFlow struct {
	path   []Hop
	stripe int
	bw     uint64
	gen    uint32  // latest generation minted
	gens   []foGen // generations possibly live, oldest first
}

// Flyover implements the hop-local short-lifetime model. Safe for
// concurrent use.
type Flyover struct {
	*substrate
	fmu   sync.Mutex
	flows map[reservation.ID]*foFlow
}

// NewFlyover builds the flyover model: 4 s epochs and a one-epoch (4 s)
// default lifetime — flyovers are short-lived by design, four renewals per
// bounded-tube EER lifetime.
func NewFlyover(cfg Config) (*Flyover, error) {
	c := cfg.withDefaults(4, 128, 0)
	if c.LifetimeSec == 0 {
		c.LifetimeSec = c.EpochSeconds
	}
	s, err := newSubstrate(c)
	if err != nil {
		return nil, err
	}
	return &Flyover{substrate: s, flows: make(map[reservation.ID]*foFlow)}, nil
}

// Name returns "flyover".
func (p *Flyover) Name() string { return NameFlyover }

// Provision admits the per-hop tube SegRs.
func (p *Flyover) Provision(path []Hop, demandKbps uint64) error {
	return p.provision(path, demandKbps)
}

// acquireGen admits one generation's flyovers hop by hop, hop-locally:
// no rollback on refusal. An engine-level duplicate (restree.ErrExists) is
// an idempotent retry hitting a flyover the hop already holds and counts as
// admitted. It returns the number of hops admitted and the first refusing
// hop's error.
func (p *Flyover) acquireGen(flow reservation.ID, path []Hop, stripe int, bw uint64, gen, expT uint32) (int, error) {
	id := flow.Derived(gen)
	admitted := 0
	var firstErr error
	for _, h := range path {
		err := p.planes[h.IA].SetupEER(id, tubeSegID(h, stripe), bw, expT)
		p.addHopOps(1)
		if err != nil && err != restree.ErrExists {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		admitted++
	}
	return admitted, firstErr
}

// Setup acquires generation-0 flyovers at every hop. A refusal at any hop
// refuses the flow (the source cannot protect the full path), but the hops
// that admitted keep their flyovers until expiry — hop-local semantics have
// no rollback. A retried setup after a source crash dedups against the
// surviving flyovers instead of double-charging.
func (p *Flyover) Setup(flow reservation.ID, path []Hop, bwKbps uint64) (uint64, error) {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	if _, dup := p.flows[flow]; dup {
		return 0, ErrFlowExists
	}
	p.mu.Lock()
	err := p.checkPathLocked(path)
	stripe := stripeOf(flow, p.stripes)
	p.mu.Unlock()
	if err != nil {
		return 0, err
	}
	now := p.clock()
	expT := now + p.life
	if _, err := p.acquireGen(flow, path, stripe, bwKbps, 0, expT); err != nil {
		p.noteRefusal()
		return 0, err
	}
	p.flows[flow] = &foFlow{
		path: append([]Hop(nil), path...), stripe: stripe, bw: bwKbps,
		gens: []foGen{{gen: 0, expT: expT}},
	}
	p.noteSetup()
	return bwKbps, nil
}

// Renew mints the next generation as a FRESH setup anchored at now; the old
// generation is not replaced or torn down — it lapses on its own. Where the
// generations overlap in time the flow is briefly double-charged: that is
// the flyover model's renewal cost, and why a renewal can lose its slot to
// a competing setup that arrived after the old generation expired.
func (p *Flyover) Renew(flow reservation.ID) (uint64, error) {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	fl, ok := p.flows[flow]
	if !ok {
		return 0, ErrUnknownFlow
	}
	now := p.clock()
	fl.pruneGens(now)
	fl.gen++
	expT := now + p.life
	admitted, err := p.acquireGen(flow, fl.path, fl.stripe, fl.bw, fl.gen, expT)
	if admitted > 0 {
		// Some hops hold the new generation even if the flow-level renewal
		// was refused; remember it so Teardown releases those flyovers.
		fl.gens = append(fl.gens, foGen{gen: fl.gen, expT: expT})
	}
	if err != nil {
		p.noteRefusal()
		return 0, err
	}
	p.noteRenew()
	return fl.bw, nil
}

// RenewWave renews per flow: a flyover renewal is a fresh setup, so there
// is no in-place batch form (each grant is a new record, admitted
// first-come-first-served).
func (p *Flyover) RenewWave(flows []reservation.ID, grants []uint64, errs []error) {
	renewWaveSeq(p, flows, grants, errs)
}

// Teardown releases every possibly-live generation at every hop.
func (p *Flyover) Teardown(flow reservation.ID) {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	fl, ok := p.flows[flow]
	if !ok {
		return
	}
	for _, g := range fl.gens {
		id := flow.Derived(g.gen)
		for _, h := range fl.path {
			p.planes[h.IA].TeardownEER(id, tubeSegID(h, fl.stripe))
		}
		p.addHopOps(uint64(len(fl.path)))
	}
	delete(p.flows, flow)
}

// Tick advances lazy expiry on every engine and drops flows whose last
// generation has lapsed.
func (p *Flyover) Tick() int {
	n := p.tick()
	now := p.clock()
	p.fmu.Lock()
	ids := make([]reservation.ID, 0, len(p.flows))
	for id := range p.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		fl := p.flows[id]
		fl.pruneGens(now)
		if len(fl.gens) == 0 {
			delete(p.flows, id)
		}
	}
	p.fmu.Unlock()
	return n
}

// pruneGens drops generations whose lifetime has lapsed (their engine
// records expire lazily; nothing to release).
func (fl *foFlow) pruneGens(now uint32) {
	kept := fl.gens[:0]
	for _, g := range fl.gens {
		if g.expT > now {
			kept = append(kept, g)
		}
	}
	fl.gens = kept
}

// Counts snapshots the aggregate outcomes.
func (p *Flyover) Counts() Counts {
	p.fmu.Lock()
	n := len(p.flows)
	p.fmu.Unlock()
	return p.counts(n)
}

// Audit snapshots the conservation rows of every AS.
func (p *Flyover) Audit(fromT, toT uint32) []ASAudit { return p.audit(fromT, toT) }

// Close releases the engines' worker pools.
func (p *Flyover) Close() { p.close() }

// forget drops the source's record without touching the engines (the crash
// seam; see BoundedTube.forget).
func (p *Flyover) forget(flow reservation.ID) {
	p.fmu.Lock()
	delete(p.flows, flow)
	p.fmu.Unlock()
}
