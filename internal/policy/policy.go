// Package policy puts the reservation lifecycle — setup, renewal, teardown,
// demand accounting, epoch granularity — behind one interface and implements
// three reservation models over the same sharded control-plane substrate
// (one cserv.CPlane per on-path AS, each backed by the pluggable
// admission.Admitter implementations):
//
//   - BoundedTube — the paper's model (§3.3/§4.2): a flow's end-to-end
//     reservation is set up atomically across every on-path hop (a refusal
//     anywhere rolls the whole chain back), and a renewal REPLACES the
//     current version in place — its old charge is released before the free
//     bandwidth is probed, so a flow renewing on time can never lose its
//     slot to a competing setup, and a refused renewal falls back to the
//     still-valid previous version.
//
//   - Flyover (Wyss et al., PAPERS.md) — reservations stripped to hop-local
//     "flyovers": short fixed lifetimes, no end-to-end path state and no
//     cross-hop atomicity (a hop admits or refuses on its own; a partial
//     acquisition leaves the admitted hops charged until they expire), and
//     renewal IS a fresh setup — a new-generation flyover is admitted
//     alongside the old one, which is left to lapse. Flyovers therefore
//     compete with every other setup at renewal time: the model trades the
//     bounded-tube renewal guarantee for statelessness.
//
//   - Hummingbird (Wüst et al., PAPERS.md) — reservations decoupled from
//     paths and sliced in time: each hop sells bandwidth × time-slice grants
//     over fine-grained epochs, a flow's next slice is anchored at the END
//     of its current one (not at "now"), and renewing early books the slice
//     ahead of competing setups. Slices concatenate seamlessly on the
//     restree ledger — the handover epoch is never double-charged.
//
// All three reuse the same engine mechanics: one shard lock per operation,
// shard-major batch renewal where the model permits it (bounded-tube), and
// lazy expiry on the restree ledgers. Where the models' semantics overlap —
// a single-hop path, one time slice, the same lifetime, quantized demand —
// the three produce identical admit/refuse decisions; the differential suite
// and FuzzPolicyEquivalence lock that in, and the conservation property test
// asserts that no model ever admits demand above capacity at any epoch.
package policy

import (
	"errors"

	"colibri/internal/admission"
	"colibri/internal/cserv"
	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// Policy errors. Engine-level refusals (cserv.ErrInsufficient,
// restree.ErrExists, ...) pass through unwrapped so callers can tell a
// capacity refusal from a duplicate.
var (
	// ErrUnknownFlow is returned for operations on a flow the policy does
	// not track.
	ErrUnknownFlow = errors.New("policy: unknown flow")
	// ErrFlowExists rejects a setup for a flow ID the policy already tracks.
	ErrFlowExists = errors.New("policy: flow already set up")
	// ErrUnprovisioned rejects a setup over a hop whose tube has not been
	// provisioned.
	ErrUnprovisioned = errors.New("policy: hop tube not provisioned")
	// ErrEmptyPath rejects a setup or provision over an empty path.
	ErrEmptyPath = errors.New("policy: empty path")
)

// Hop is one on-path AS as a reservation sees it: the AS (keyed by IA into
// the substrate's per-AS engines) and the local ingress/egress interfaces.
type Hop struct {
	IA     topology.IA
	In, Eg topology.IfID
}

// Config parameterizes a policy. The zero value of every field selects a
// default; Clock and ASes are required.
type Config struct {
	// ASes are the on-path ASes the policy runs engines for.
	ASes []*topology.AS
	// Split is the link-capacity split; the zero value selects
	// admission.DefaultSplit.
	Split admission.TrafficSplit
	// Shards is the per-AS CPlane shard count (power of two; 0 selects 1).
	Shards int
	// AdmissionImpl names the SegR admission backend per shard
	// (admission.Impl*); empty selects the memoized default.
	AdmissionImpl string
	// EpochSeconds is the demand-ledger discretization. 0 selects the
	// model's natural granularity: 4 s for bounded-tube and flyover, 1 s for
	// Hummingbird (fine slicing is the model's point).
	EpochSeconds uint32
	// LedgerEpochs is the ledger ring horizon (0 selects 128; Hummingbird
	// selects 512 so its fine epochs still cover SegR-scale windows).
	LedgerEpochs int
	// LifetimeSec is the per-grant lifetime: bounded-tube defaults to the
	// EER lifetime (16 s), flyover to one epoch (short-lived is the model),
	// Hummingbird to one slice (= 4 s at the default fine epochs).
	LifetimeSec uint32
	// Stripes is the number of tube SegRs provisioned per hop; flows are
	// assigned round-robin by flow Num. More stripes spread a hop's EER
	// population across CPlane shards (a SegR never spans shards). 0 selects
	// max(1, Shards).
	Stripes int
	// Clock supplies control-plane time in Unix seconds. Required.
	Clock func() uint32
}

// Counts is a policy's aggregate outcome snapshot.
type Counts struct {
	// Flows is the number of live flows the policy tracks.
	Flows int
	// Setups/Renews/Refusals are flow-level outcomes (a refusal is any
	// setup or renewal that did not fully succeed).
	Setups, Renews, Refusals uint64
	// HopOps is the number of per-hop control operations issued — the
	// renewal-load metric: flyover's fresh-setup renewals and Hummingbird's
	// per-slice grants cost one op per hop per lifetime, bounded-tube one op
	// per hop per renewal (batchable shard-major).
	HopOps uint64
	// Engine sums the per-AS CPlane counters.
	Engine cserv.CPlaneCounts
}

// ASAudit is one AS's conservation snapshot (see cserv.SegRAudit).
type ASAudit struct {
	IA   topology.IA
	Segs []cserv.SegRAudit
}

// Policy is the reservation-model interface: setup/renew/teardown semantics,
// demand accounting and epoch granularity differ per model, the substrate
// underneath does not. Implementations are safe for concurrent use.
type Policy interface {
	// Name returns the model name (bounded-tube, flyover, hummingbird).
	Name() string
	// Provision admits the per-hop tube SegRs flows on this path charge
	// against; demandKbps is the segment-level demand at each hop.
	// Provisioning a tube twice is a no-op.
	Provision(path []Hop, demandKbps uint64) error
	// Setup admits flow at bwKbps over the provisioned path per the model's
	// semantics and returns the granted bandwidth (== bwKbps on success;
	// grants are full-or-nothing at setup in all three models).
	Setup(flow reservation.ID, path []Hop, bwKbps uint64) (uint64, error)
	// Renew extends the flow's reservation by one lifetime per the model's
	// semantics and returns the granted bandwidth.
	Renew(flow reservation.ID) (uint64, error)
	// RenewWave renews many flows; grants[i]/errs[i] receive flow i's
	// outcome (the slices must mirror flows). Bounded-tube batches
	// shard-major through cserv.RenewBatch; the hop-local models issue
	// per-flow grants (their renewal is a fresh setup).
	RenewWave(flows []reservation.ID, grants []uint64, errs []error)
	// Teardown releases every per-hop record the policy still holds for the
	// flow. Unknown flows are a no-op.
	Teardown(flow reservation.ID)
	// Tick advances lazy expiry on every engine; it returns the number of
	// per-hop records expired.
	Tick() int
	// Counts snapshots the aggregate outcomes.
	Counts() Counts
	// Audit snapshots every AS's per-SegR grant vs peak admitted demand over
	// [fromT, toT), in IA order — the conservation probe.
	Audit(fromT, toT uint32) []ASAudit
	// Close releases engine worker goroutines.
	Close()
}

// Names accepted by New.
const (
	NameBoundedTube = "bounded-tube"
	NameFlyover     = "flyover"
	NameHummingbird = "hummingbird"
)

// Names lists the implemented models in canonical order.
func Names() []string {
	return []string{NameBoundedTube, NameFlyover, NameHummingbird}
}

// New builds the named reservation model.
func New(name string, cfg Config) (Policy, error) {
	switch name {
	case NameBoundedTube:
		return NewBoundedTube(cfg)
	case NameFlyover:
		return NewFlyover(cfg)
	case NameHummingbird:
		return NewHummingbird(cfg)
	default:
		return nil, errors.New("policy: unknown model " + name)
	}
}

var (
	_ Policy = (*BoundedTube)(nil)
	_ Policy = (*Flyover)(nil)
	_ Policy = (*Hummingbird)(nil)
)
