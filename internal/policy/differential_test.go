package policy

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"colibri/internal/cserv"
)

// The cross-policy differential harness. The three reservation models are
// genuinely different protocols, but over the OVERLAP REGION their
// admit/refuse decisions must be identical:
//
//   - single-hop paths (no cross-hop atomicity to differ on),
//   - one tube stripe (no striping spread),
//   - the same lifetime L for every model, with every op timestamp and L
//     aligned to the coarsest epoch (4 s) so the conservative floor/ceil
//     widening quantizes the same real windows under 4 s (bounded-tube,
//     flyover) and 1 s (hummingbird) epochs alike,
//   - quantized demand: the tube grant is slots×B and every flow asks for
//     exactly B, so bounded-tube's min(request, free) renewal grant is
//     full-or-zero like the other models' windowed setups,
//   - renewals issued only at or after expiry (early renewal is exactly
//     where the models legitimately diverge: in-place replacement vs
//     overlap double-charge vs advance booking — pinned by the unit tests
//     in policy_test.go), and a refused renewal kills the flow.
//
// Within that region a bounded-tube renewal (old charge lapsed, fresh probe
// of [now, now+L)), a flyover renewal (fresh setup anchored at now) and a
// hummingbird renewal (next slice anchored at max(endT, now) = now) compute
// over byte-identical ledger windows, so every decision, every grant, the
// surviving flow set and the final conservation audit must agree.

// diffB is the demand quantum every overlap-region flow requests.
const diffB = 1_000

// diffHarness drives the three models in lockstep over one op tape.
type diffHarness struct {
	t    testing.TB
	pols []Policy
	now  uint32
	life uint32
	seq  uint32
	live []uint32          // admitted flow nums, insertion order
	expT map[uint32]uint32 // per live flow
}

// newDiffHarness builds the three models over identical single-hop
// topologies (each model owns its engines) with a shared manual clock.
func newDiffHarness(t testing.TB, shards, slots int, life uint32) *diffHarness {
	h := &diffHarness{t: t, now: 1_000, life: life, expT: make(map[uint32]uint32)}
	demand := uint64(slots) * diffB
	for _, name := range Names() {
		// Links far above the tube demand: the tube grant is the binding
		// constraint whatever the per-shard capacity split deals out.
		ases, path := chainTopo(t, 1, demand*16)
		p, err := New(name, Config{
			ASes:        ases,
			Shards:      shards,
			Stripes:     1,
			LifetimeSec: life,
			Clock:       func() uint32 { return h.now },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		if err := p.Provision(path, demand); err != nil {
			t.Fatal(err)
		}
		h.pols = append(h.pols, p)
	}
	return h
}

// path rebuilds the single-hop path value (identical for every model).
func (h *diffHarness) path() []Hop {
	return []Hop{{IA: ia(1, 2), In: 1, Eg: 2}}
}

// errClass folds an error to its decision class; unexpected errors keep
// their message so a divergence names the culprit.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrFlowExists):
		return "dup"
	case errors.Is(err, ErrUnknownFlow):
		return "unknown"
	case errors.Is(err, cserv.ErrInsufficient):
		return "insufficient"
	default:
		return "other:" + err.Error()
	}
}

// agree asserts one op's (grant, error-class) decisions match across the
// models and returns the shared decision.
func (h *diffHarness) agree(op string, grants []uint64, errs []error) (uint64, string) {
	for i := 1; i < len(h.pols); i++ {
		if grants[i] != grants[0] || errClass(errs[i]) != errClass(errs[0]) {
			h.t.Fatalf("t=%d %s: %s decided (%d, %s) but %s decided (%d, %s)",
				h.now, op,
				h.pols[0].Name(), grants[0], errClass(errs[0]),
				h.pols[i].Name(), grants[i], errClass(errs[i]))
		}
	}
	return grants[0], errClass(errs[0])
}

// setup admits one fresh flow on every model and records it if admitted.
func (h *diffHarness) setup() {
	h.seq++
	num := h.seq
	grants := make([]uint64, len(h.pols))
	errs := make([]error, len(h.pols))
	for i, p := range h.pols {
		grants[i], errs[i] = p.Setup(flowID(num), h.path(), diffB)
	}
	if _, cls := h.agree(fmt.Sprintf("setup(%d)", num), grants, errs); cls == "ok" {
		h.live = append(h.live, num)
		h.expT[num] = h.now + h.life
	}
}

// renewable lists flows at or past expiry, in flow order.
func (h *diffHarness) renewable() []uint32 {
	var out []uint32
	for _, n := range h.live {
		if h.expT[n] <= h.now {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// renew renews one at-or-past-expiry flow; a refused renewal kills the flow
// (it has lapsed everywhere — the policies prune it on their next Tick).
func (h *diffHarness) renew(sel int) {
	cands := h.renewable()
	if len(cands) == 0 {
		return
	}
	num := cands[sel%len(cands)]
	grants := make([]uint64, len(h.pols))
	errs := make([]error, len(h.pols))
	for i, p := range h.pols {
		grants[i], errs[i] = p.Renew(flowID(num))
	}
	if _, cls := h.agree(fmt.Sprintf("renew(%d)", num), grants, errs); cls == "ok" {
		h.expT[num] = h.now + h.life
	} else {
		h.drop(num)
	}
}

// teardown releases one live flow on every model.
func (h *diffHarness) teardown(sel int) {
	if len(h.live) == 0 {
		return
	}
	num := h.live[sel%len(h.live)]
	for _, p := range h.pols {
		p.Teardown(flowID(num))
	}
	h.drop(num)
}

// drop forgets a flow in the harness bookkeeping.
func (h *diffHarness) drop(num uint32) {
	for i, n := range h.live {
		if n == num {
			h.live = append(h.live[:i], h.live[i+1:]...)
			break
		}
	}
	delete(h.expT, num)
}

// advance moves the shared clock forward by whole coarse epochs.
func (h *diffHarness) advance(sel int) {
	h.now += 4 * uint32(1+sel%4)
}

// tick runs lazy expiry on every model and asserts the surviving flow sets
// agree; the harness drops flows that lapsed unrenewed.
func (h *diffHarness) tick() {
	flows := make([]int, len(h.pols))
	for i, p := range h.pols {
		p.Tick()
		flows[i] = p.Counts().Flows
	}
	for i := 1; i < len(h.pols); i++ {
		if flows[i] != flows[0] {
			h.t.Fatalf("t=%d tick: %s keeps %d flows but %s keeps %d",
				h.now, h.pols[0].Name(), flows[0], h.pols[i].Name(), flows[i])
		}
	}
	for _, n := range append([]uint32(nil), h.live...) {
		if h.expT[n] <= h.now {
			h.drop(n)
		}
	}
}

// finish cross-checks the end state: surviving flows and the full
// conservation audit (per-tube grants, peak demand, live records) must be
// byte-identical across the models.
func (h *diffHarness) finish() {
	h.tick()
	if got := h.pols[0].Counts().Flows; got != len(h.live) {
		h.t.Fatalf("t=%d finish: harness tracks %d flows, policies keep %d",
			h.now, len(h.live), got)
	}
	ref := h.pols[0].Audit(h.now, h.now+2*h.life)
	for i := 1; i < len(h.pols); i++ {
		aud := h.pols[i].Audit(h.now, h.now+2*h.life)
		if !reflect.DeepEqual(aud, ref) {
			h.t.Fatalf("t=%d finish: audit diverges:\n%s: %+v\n%s: %+v",
				h.now, h.pols[0].Name(), ref, h.pols[i].Name(), aud)
		}
	}
}

// runPolicyDiff decodes one fuzz tape and drives the harness. Layout:
// header [shardsSel, slotsSel, lifeSel, _], then 4-byte op groups
// [code, sel, _, _].
func runPolicyDiff(t testing.TB, data []byte) {
	if len(data) < 8 {
		return
	}
	shards := []int{1, 2, 4}[int(data[0])%3]
	slots := 1 + int(data[1])%8
	life := []uint32{4, 8, 16}[int(data[2])%3]
	h := newDiffHarness(t, shards, slots, life)
	ops := data[4:]
	if len(ops) > 1024 {
		ops = ops[:1024]
	}
	for i := 0; i+4 <= len(ops); i += 4 {
		code, sel := ops[i], int(ops[i+1])
		switch code % 8 {
		case 0, 1, 2:
			h.setup()
		case 3, 4:
			h.renew(sel)
		case 5:
			h.teardown(sel)
		case 6:
			h.advance(sel)
		case 7:
			h.tick()
		}
	}
	h.finish()
}

// TestPolicyDifferentialScenarios pins hand-written overlap-region
// scenarios: capacity exhaustion, boundary renewal, renewal-vs-setup
// contention at the boundary, teardown-then-reuse, and lapse-without-renew.
func TestPolicyDifferentialScenarios(t *testing.T) {
	t.Run("exhaust-then-refill", func(t *testing.T) {
		h := newDiffHarness(t, 1, 3, 8)
		for i := 0; i < 5; i++ { // 3 admitted, 2 refused
			h.setup()
		}
		if len(h.live) != 3 {
			t.Fatalf("live = %d, want 3 (tube holds 3 slots)", len(h.live))
		}
		h.teardown(0)
		h.setup() // freed slot is admitted again
		if len(h.live) != 3 {
			t.Fatalf("live after refill = %d, want 3", len(h.live))
		}
		h.finish()
	})
	t.Run("boundary-renewal", func(t *testing.T) {
		h := newDiffHarness(t, 1, 2, 8)
		h.setup()
		h.setup()
		h.advance(1) // +8 s: both at their expiry boundary
		h.renew(0)
		h.renew(0)
		if len(h.renewable()) != 0 {
			t.Fatalf("flows still renewable after boundary renewals")
		}
		h.finish()
	})
	t.Run("boundary-contention", func(t *testing.T) {
		h := newDiffHarness(t, 1, 1, 4)
		h.setup()
		h.advance(0) // +4 s: the slot's window has lapsed
		h.setup()    // a competing setup lands first…
		h.renew(0)   // …so the incumbent's renewal is refused — in EVERY model
		if len(h.live) != 1 {
			t.Fatalf("live = %d, want 1 (the thief)", len(h.live))
		}
		h.finish()
	})
	t.Run("lapse-without-renew", func(t *testing.T) {
		h := newDiffHarness(t, 2, 4, 4)
		for i := 0; i < 4; i++ {
			h.setup()
		}
		h.advance(1)
		h.tick() // all lapsed
		if len(h.live) != 0 {
			t.Fatalf("live = %d, want 0", len(h.live))
		}
		h.setup() // capacity fully recovered
		if len(h.live) != 1 {
			t.Fatalf("fresh setup refused after full lapse")
		}
		h.finish()
	})
	t.Run("late-renewal", func(t *testing.T) {
		h := newDiffHarness(t, 1, 2, 4)
		h.setup()
		h.advance(2) // +12 s: way past expiry, no Tick — records linger
		h.renew(0)   // late renewal re-anchors at now in every model
		if len(h.renewable()) != 0 {
			t.Fatalf("flow still renewable after late renewal")
		}
		h.finish()
	})
}
