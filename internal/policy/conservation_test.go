package policy

import (
	"fmt"
	"testing"

	"colibri/internal/admission"
	"colibri/internal/reservation"
)

// The conservation property test: whatever a reservation model does —
// setups, renewals, teardowns, lazy expiry, source crashes with retried
// setups — no AS may ever be charged beyond what it granted, at any epoch.
// Two invariants are checked after every step of a pseudo-random op tape,
// for every policy × every Admitter backend × sharded and unsharded
// engines:
//
//  1. dynamic: each tube SegR's peak ledger demand over the whole audit
//     horizon (including Hummingbird's advance-booked future slices) never
//     exceeds the tube's granted bandwidth;
//  2. static: the tube grants an AS hands out per egress never exceed the
//     EER share of the link capacity under the traffic split.
//
// The crash op is the PR 8 leak class: the source forgets its record while
// the per-hop charges survive, then retries the setup — the hops must dedup
// (restree.ErrExists), not double-charge.

// consHarness drives one policy through a deterministic LCG op tape.
type consHarness struct {
	t     *testing.T
	p     Policy
	sub   *substrate
	now   uint32
	life  uint32
	path  []Hop
	capKb uint64
	state uint64
	live  []uint32
	seq   uint32
}

// substrateOf reaches the shared engine layer of any built-in model.
func substrateOf(p Policy) *substrate {
	switch v := p.(type) {
	case *BoundedTube:
		return v.substrate
	case *Flyover:
		return v.substrate
	case *Hummingbird:
		return v.substrate
	}
	return nil
}

// forgetter is the crash seam every built-in model implements.
type forgetter interface{ forget(reservation.ID) }

func (h *consHarness) next() uint64 {
	h.state = h.state*6364136223846793005 + 1442695040888963407
	return h.state >> 33
}

// check asserts both conservation invariants right now.
func (h *consHarness) check(step int) {
	h.t.Helper()
	for _, a := range h.p.Audit(h.now, h.now+256) {
		var granted uint64
		for _, s := range a.Segs {
			if s.PeakKbps > s.GrantKbps {
				h.t.Fatalf("step %d t=%d: AS %s seg %s charged %d kbps over its %d kbps grant",
					step, h.now, a.IA, s.Seg, s.PeakKbps, s.GrantKbps)
			}
			granted += s.GrantKbps
		}
		share := h.sub.split.EERShare(h.capKb)
		if granted > share {
			h.t.Fatalf("step %d t=%d: AS %s granted %d kbps of tubes over its %d kbps EER share",
				step, h.now, a.IA, granted, share)
		}
	}
}

func (h *consHarness) step(i int) {
	op := h.next()
	switch op % 16 {
	case 0, 1, 2, 3: // setup a fresh flow, varied demand
		h.seq++
		bw := 500 * (1 + op>>8%6)
		if _, err := h.p.Setup(flowID(h.seq), h.path, bw); err == nil {
			h.live = append(h.live, h.seq)
		}
	case 4, 5, 6: // renew one live flow (early, on-time or late — all legal here)
		if len(h.live) > 0 {
			h.p.Renew(flowID(h.live[int(op>>8)%len(h.live)]))
		}
	case 7: // batched renewal wave over every live flow
		if len(h.live) > 0 {
			ids := make([]reservation.ID, len(h.live))
			for j, n := range h.live {
				ids[j] = flowID(n)
			}
			h.p.RenewWave(ids, make([]uint64, len(ids)), make([]error, len(ids)))
		}
	case 8, 9: // teardown one live flow
		if len(h.live) > 0 {
			j := int(op>>8) % len(h.live)
			h.p.Teardown(flowID(h.live[j]))
			h.live = append(h.live[:j], h.live[j+1:]...)
		}
	case 10, 11, 12: // advance the clock, sometimes with lazy expiry
		h.now += uint32(1 + op>>8%8)
		if op>>16&1 == 1 {
			h.p.Tick()
			// Flows the policy pruned are dead to the harness too.
			kept := h.live[:0]
			for _, n := range h.live {
				if _, err := h.p.Renew(flowID(n)); err != ErrUnknownFlow {
					kept = append(kept, n)
				}
			}
			h.live = kept
		}
	case 13, 14: // crash: the source forgets a flow, then retries the setup
		if len(h.live) > 0 {
			n := h.live[int(op>>8)%len(h.live)]
			h.p.(forgetter).forget(flowID(n))
			if _, err := h.p.Setup(flowID(n), h.path, 500*(1+op>>16%6)); err != nil {
				// The retry was refused (e.g. surviving charges at a full
				// hop under a different demand): the flow is gone.
				j := -1
				for k, v := range h.live {
					if v == n {
						j = k
					}
				}
				h.live = append(h.live[:j], h.live[j+1:]...)
			}
		}
	case 15: // idle epoch
		h.now += 1
	}
	h.check(i)
}

// TestConservation runs the op tape against every policy × every admission
// backend × unsharded and sharded engines.
func TestConservation(t *testing.T) {
	impls := []string{admission.ImplNaive, admission.ImplMemoized, admission.ImplRestree}
	for _, name := range Names() {
		for _, impl := range impls {
			for _, shards := range []int{1, 4} {
				name, impl, shards := name, impl, shards
				t.Run(fmt.Sprintf("%s/%s/shards=%d", name, impl, shards), func(t *testing.T) {
					const capKb = 40_000 // 30 Mbps EER share per link
					ases, path := chainTopo(t, 3, capKb)
					h := &consHarness{
						t: t, now: 1_000, life: 8, path: path, capKb: capKb,
						state: 0x9E3779B97F4A7C15 ^ uint64(shards),
					}
					p, err := New(name, Config{
						ASes:          ases,
						Shards:        shards,
						Stripes:       2 * shards,
						AdmissionImpl: impl,
						LifetimeSec:   h.life,
						Clock:         func() uint32 { return h.now },
					})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(p.Close)
					h.p, h.sub = p, substrateOf(p)
					if h.sub == nil {
						t.Fatalf("no substrate for %s", name)
					}
					// Provision most of the EER share so the tape actually
					// hits refusals, partial grants and recovery.
					if err := p.Provision(path, 24_000); err != nil {
						t.Fatal(err)
					}
					for i := 0; i < 250; i++ {
						h.step(i)
					}
					// Drain: teardown everything, expire the rest, audit zero.
					for _, n := range h.live {
						p.Teardown(flowID(n))
					}
					h.now += 4 * h.life
					p.Tick()
					for _, a := range p.Audit(h.now, h.now+256) {
						for _, s := range a.Segs {
							if s.PeakKbps != 0 || s.LiveEERs != 0 {
								t.Fatalf("drain: AS %s seg %s still charged: %+v", a.IA, s.Seg, s)
							}
						}
					}
				})
			}
		}
	}
}
