// substrate.go — the engine layer every reservation model shares: one
// sharded cserv.CPlane per on-path AS, per-hop "tube" SegRs admitted through
// the pluggable admission backends, and the conservation audit. The models
// differ only in how flows charge the tubes (boundedtube.go, flyover.go,
// hummingbird.go); the substrate guarantees that whatever they do, admitted
// demand is checked against the tube grants on the restree ledgers with one
// shard lock per operation and lazy expiry.
package policy

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"colibri/internal/admission"
	"colibri/internal/cserv"
	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// tubeKey names one provisioned hop tube.
type tubeKey struct {
	ia     topology.IA
	in, eg topology.IfID
}

// substrate is the shared per-AS engine state. The tube set is guarded by
// mu; the CPlanes lock themselves; outcome counters are atomics so Counts
// never blocks an in-flight operation.
type substrate struct {
	mu      sync.Mutex
	planes  map[topology.IA]*cserv.CPlane
	order   []topology.IA // sorted IAs for deterministic iteration
	tubes   map[tubeKey]int
	clock   func() uint32
	split   admission.TrafficSplit
	life    uint32
	stripes int

	setups, renews, refusals, hopOps atomic.Uint64
}

// withDefaults fills cfg's zero fields with the model's natural parameters.
func (cfg Config) withDefaults(epochSec uint32, ledgerEpochs int, lifeSec uint32) Config {
	if cfg.Split == (admission.TrafficSplit{}) {
		cfg.Split = admission.DefaultSplit
	}
	if cfg.EpochSeconds == 0 {
		cfg.EpochSeconds = epochSec
	}
	if cfg.LedgerEpochs == 0 {
		cfg.LedgerEpochs = ledgerEpochs
	}
	if cfg.LifetimeSec == 0 {
		cfg.LifetimeSec = lifeSec
	}
	if cfg.Stripes == 0 {
		cfg.Stripes = cfg.Shards
		if cfg.Stripes < 1 {
			cfg.Stripes = 1
		}
	}
	return cfg
}

// newSubstrate builds one CPlane per AS from the (default-filled) config.
func newSubstrate(cfg Config) (*substrate, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("policy: Config.Clock is required")
	}
	if len(cfg.ASes) == 0 {
		return nil, fmt.Errorf("policy: Config.ASes is empty")
	}
	s := &substrate{
		planes:  make(map[topology.IA]*cserv.CPlane, len(cfg.ASes)),
		tubes:   make(map[tubeKey]int),
		clock:   cfg.Clock,
		split:   cfg.Split,
		life:    cfg.LifetimeSec,
		stripes: cfg.Stripes,
	}
	for _, as := range cfg.ASes {
		if _, dup := s.planes[as.IA]; dup {
			return nil, fmt.Errorf("policy: duplicate AS %s", as.IA)
		}
		cp, err := cserv.NewCPlane(cserv.CPlaneConfig{
			AS:            as,
			Split:         cfg.Split,
			Shards:        cfg.Shards,
			AdmissionImpl: cfg.AdmissionImpl,
			EpochSeconds:  cfg.EpochSeconds,
			LedgerEpochs:  cfg.LedgerEpochs,
			Clock:         cfg.Clock,
		})
		if err != nil {
			return nil, err
		}
		s.planes[as.IA] = cp
		s.order = append(s.order, as.IA)
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	return s, nil
}

// tubeSegID derives the deterministic SegR ID of one hop tube stripe: the
// hop's own IA is the source (tube SegRs are local provisioning, not flow
// state) and Num encodes (in, eg, stripe) — disjoint by construction from
// flow EER IDs, which carry the flow source's IA.
func tubeSegID(h Hop, stripe int) reservation.ID {
	return reservation.ID{
		SrcAS: h.IA,
		Num:   uint32(h.In)<<20 | uint32(h.Eg)<<8 | uint32(stripe)&0xff,
	}
}

// stripeOf assigns a flow to a tube stripe round-robin by flow Num —
// deterministic, and uniform for sequentially numbered flows.
func stripeOf(flow reservation.ID, stripes int) int {
	return int(flow.Num % uint32(stripes))
}

// provision admits the tube SegRs of every hop on the path, demandKbps per
// hop split across the stripes exactly (remainder to the low stripes).
// Already-provisioned tubes are skipped, so overlapping paths share tubes.
func (s *substrate) provision(path []Hop, demandKbps uint64) error {
	if len(path) == 0 {
		return ErrEmptyPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range path {
		cp := s.planes[h.IA]
		if cp == nil {
			return fmt.Errorf("policy: no engine for AS %s", h.IA)
		}
		k := tubeKey{ia: h.IA, in: h.In, eg: h.Eg}
		if s.tubes[k] > 0 {
			continue
		}
		for st := 0; st < s.stripes; st++ {
			share := demandKbps / uint64(s.stripes)
			if uint64(st) < demandKbps%uint64(s.stripes) {
				share++
			}
			if share == 0 {
				continue
			}
			req := admission.Request{
				ID:      tubeSegID(h, st),
				Src:     h.IA,
				In:      h.In,
				Eg:      h.Eg,
				MaxKbps: share,
			}
			if _, err := cp.AddSegR(req); err != nil {
				return fmt.Errorf("policy: provision %s if %d->%d stripe %d: %w",
					h.IA, h.In, h.Eg, st, err)
			}
		}
		s.tubes[k] = s.stripes
	}
	return nil
}

// checkPath verifies every hop's tube is provisioned (under s.mu).
func (s *substrate) checkPathLocked(path []Hop) error {
	if len(path) == 0 {
		return ErrEmptyPath
	}
	for _, h := range path {
		if s.tubes[tubeKey{ia: h.IA, in: h.In, eg: h.Eg}] == 0 {
			return ErrUnprovisioned
		}
	}
	return nil
}

// tick advances lazy expiry on every engine, in IA order.
func (s *substrate) tick() int {
	total := 0
	for _, ia := range s.order {
		total += s.planes[ia].Tick()
	}
	return total
}

// audit snapshots every AS's conservation rows, in IA order.
func (s *substrate) audit(fromT, toT uint32) []ASAudit {
	out := make([]ASAudit, 0, len(s.order))
	for _, ia := range s.order {
		out = append(out, ASAudit{IA: ia, Segs: s.planes[ia].AuditLedgers(fromT, toT)})
	}
	return out
}

// engineCounts sums the per-AS CPlane counters, in IA order.
func (s *substrate) engineCounts() cserv.CPlaneCounts {
	var total cserv.CPlaneCounts
	for _, ia := range s.order {
		ct := s.planes[ia].Counts()
		total.SegRs += ct.SegRs
		total.EERs += ct.EERs
		total.Admits += ct.Admits
		total.Renews += ct.Renews
		total.Rejects += ct.Rejects
		total.Dedups += ct.Dedups
		total.Stale += ct.Stale
	}
	return total
}

// counts assembles the policy-level snapshot (flows supplied by the model).
func (s *substrate) counts(flows int) Counts {
	return Counts{
		Flows:    flows,
		Setups:   s.setups.Load(),
		Renews:   s.renews.Load(),
		Refusals: s.refusals.Load(),
		HopOps:   s.hopOps.Load(),
		Engine:   s.engineCounts(),
	}
}

// Outcome-counter helpers shared by the models.
func (s *substrate) addHopOps(n uint64) { s.hopOps.Add(n) }
func (s *substrate) noteSetup()         { s.setups.Add(1) }
func (s *substrate) noteRenew()         { s.renews.Add(1) }
func (s *substrate) noteRefusal()       { s.refusals.Add(1) }

// close releases every engine's worker pool, in IA order.
func (s *substrate) close() {
	for _, ia := range s.order {
		s.planes[ia].Close()
	}
}

// renewWaveSeq is the per-flow RenewWave fallback for models whose renewal
// is a fresh setup and therefore has no shard-major batch form.
func renewWaveSeq(p Policy, flows []reservation.ID, grants []uint64, errs []error) {
	if len(flows) != len(grants) || len(flows) != len(errs) {
		panic("policy: RenewWave slice length mismatch")
	}
	for i, f := range flows {
		grants[i], errs[i] = p.Renew(f)
	}
}
