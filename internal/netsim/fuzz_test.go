package netsim

import "testing"

// FuzzParallelEquivalence drives RunBoth over fuzzer-chosen topology shapes,
// seeds, fault treatments, and worker counts: any input where the parallel
// engine's event trace or final state differs from the sequential engine's
// is a crash. The seed corpus deliberately includes the star shapes whose
// identical latencies and start times force same-timestamp key collisions
// (the tie-break is the only thing ordering them) and every fault variant.
func FuzzParallelEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(4))  // ring/clean
	f.Add(uint64(2), uint8(1), uint8(3))  // ring/loss-jitter
	f.Add(uint64(3), uint8(2), uint8(2))  // ring/partition
	f.Add(uint64(4), uint8(3), uint8(8))  // ring/crash
	f.Add(uint64(5), uint8(4), uint8(4))  // star/clean: same-t tie collisions
	f.Add(uint64(6), uint8(5), uint8(1))  // star/loss, single worker
	f.Add(uint64(99), uint8(4), uint8(7)) // star collisions, odd worker count

	f.Fuzz(func(t *testing.T, seed uint64, variant, workers uint8) {
		v := equivVariants[int(variant)%len(equivVariants)]
		w := int(workers%8) + 1
		r, err := RunBoth(0, w, v.build(seed))
		if err != nil {
			t.Fatalf("%s seed=%d workers=%d: %v", v.name, seed, w, err)
		}
		if r.SeqEvents == 0 {
			t.Fatalf("%s seed=%d: scenario executed no events", v.name, seed)
		}
	})
}
