// Fault injection for the simulator: per-link loss probability, latency
// jitter, and scheduled up/down windows, plus node detach (modelling a
// crashed/restarted service) and a partition helper.
//
// All randomness flows through a seeded splitmix64 generator owned by the
// fault plan, and the simulator is single-threaded, so a given (seed,
// schedule, workload) triple always produces the identical event trace and
// counters — chaos runs are reproducible bug reports, not flaky ones.

package netsim

// Rand is a tiny deterministic PRNG (splitmix64). It is NOT
// cryptographic; it exists so fault decisions are reproducible across
// runs and platforms without importing math/rand state.
type Rand struct{ state uint64 }

// NewRand seeds a generator. Distinct seeds give independent streams.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Int63n returns a uniform value in [0, n). n ≤ 0 returns 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Uint64() % uint64(n))
}

// Interval is a half-open virtual-time window [From, To) in nanoseconds.
type Interval struct{ From, To int64 }

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t int64) bool { return t >= iv.From && t < iv.To }

// FaultPlan describes the failure behaviour of one directed link: an
// independent per-packet loss probability, a uniform latency jitter bound,
// and scheduled down windows during which everything is dropped. A nil
// *FaultPlan is a valid "no faults" plan.
type FaultPlan struct {
	rng      *Rand
	lossProb float64
	jitterNs int64
	down     []Interval

	// LossDrops and DownDrops count packets dropped by random loss and by
	// down windows respectively.
	LossDrops uint64
	DownDrops uint64
}

// NewFaultPlan creates an empty (fault-free) plan with its own
// deterministic random stream.
func NewFaultPlan(seed uint64) *FaultPlan {
	return &FaultPlan{rng: NewRand(seed)}
}

// SetLoss sets the independent per-packet drop probability in [0, 1].
func (fp *FaultPlan) SetLoss(p float64) *FaultPlan {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	fp.lossProb = p
	return fp
}

// SetJitter sets the latency jitter bound: each transmission gets an extra
// uniform delay in [0, maxNs) on top of the link's propagation latency.
func (fp *FaultPlan) SetJitter(maxNs int64) *FaultPlan {
	if maxNs < 0 {
		maxNs = 0
	}
	fp.jitterNs = maxNs
	return fp
}

// AddDown schedules a down window [from, to): packets entering the link in
// that window are dropped.
func (fp *FaultPlan) AddDown(from, to int64) *FaultPlan {
	if to > from {
		fp.down = append(fp.down, Interval{From: from, To: to})
	}
	return fp
}

// Up reports whether the link is up (outside all down windows) at time t.
func (fp *FaultPlan) Up(t int64) bool {
	if fp == nil {
		return true
	}
	for _, iv := range fp.down {
		if iv.Contains(t) {
			return false
		}
	}
	return true
}

// Admit decides the fate of one packet entering the link at time t,
// updating the drop counters. A nil plan admits everything.
func (fp *FaultPlan) Admit(t int64) bool {
	if fp == nil {
		return true
	}
	if !fp.Up(t) {
		fp.DownDrops++
		return false
	}
	if fp.lossProb > 0 && fp.rng.Float64() < fp.lossProb {
		fp.LossDrops++
		return false
	}
	return true
}

// Jitter samples the extra delay for one transmission. A nil plan (or a
// zero bound) returns 0.
func (fp *FaultPlan) Jitter() int64 {
	if fp == nil || fp.jitterNs == 0 {
		return 0
	}
	return fp.rng.Int63n(fp.jitterNs)
}

// SetFaults attaches a fault plan to the port's link. Passing nil removes
// fault injection (the default).
func (p *Port) SetFaults(fp *FaultPlan) { p.faults = fp }

// Faults returns the port's fault plan (nil when fault-free).
func (p *Port) Faults() *FaultPlan { return p.faults }

// Partition schedules a bidirectional-looking partition by downing every
// given port (typically both directions of the links crossing a cut) for
// the window [from, to). Ports without a fault plan get a fresh one seeded
// from the window bounds.
func Partition(from, to int64, ports ...*Port) {
	for _, p := range ports {
		if p.faults == nil {
			p.faults = NewFaultPlan(uint64(from)<<32 ^ uint64(to))
		}
		p.faults.AddDown(from, to)
	}
}

// Detachable wraps a node so it can be detached (crashed) and re-attached
// (restarted): while detached, every delivery is counted and discarded.
// It models a CServ or router process crash without tearing down the
// topology. The zero value is attached.
type Detachable struct {
	Inner Node
	down  bool

	// Dropped counts packets discarded while detached.
	Dropped uint64
}

// NewDetachable wraps inner (which may be nil for a pure reachability
// flag, e.g. gating a control-plane transport).
func NewDetachable(inner Node) *Detachable { return &Detachable{Inner: inner} }

// Detach crashes the node: subsequent deliveries are dropped.
func (d *Detachable) Detach() { d.down = true }

// Attach restarts the node.
func (d *Detachable) Attach() { d.down = false }

// Up reports whether the node is attached.
func (d *Detachable) Up() bool { return !d.down }

// Receive implements Node.
func (d *Detachable) Receive(pkt *Packet, inPort int) {
	if d.down || d.Inner == nil {
		d.Dropped++
		return
	}
	d.Inner.Receive(pkt, inPort)
}

// ReceiveBatch implements BatchNode.
func (d *Detachable) ReceiveBatch(pkts []*Packet, inPort int) {
	if d.down || d.Inner == nil {
		d.Dropped += uint64(len(pkts))
		return
	}
	deliverBurst(d.Inner, pkts, inPort)
}
