package netsim

import (
	"testing"

	"colibri/internal/qos"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.At(10, func() { order = append(order, 11) }) // same time: FIFO
	end := s.Run(0)
	if end != 30 {
		t.Errorf("final time = %d", end)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim()
	fired := false
	s.At(100, func() { fired = true })
	if end := s.Run(50); end != 50 {
		t.Errorf("Run(50) = %d", end)
	}
	if fired {
		t.Error("future event fired early")
	}
	if end := s.Run(200); end != 100 {
		t.Errorf("resumed Run = %d", end)
	}
	if !fired {
		t.Error("event never fired")
	}
}

func TestAfterAndPastScheduling(t *testing.T) {
	s := NewSim()
	var at int64
	s.At(100, func() {
		s.After(50, func() { at = s.Now() })
		// Scheduling in the past clamps to now.
		s.At(10, func() {
			if s.Now() != 100 {
				t.Errorf("past event ran at %d", s.Now())
			}
		})
	})
	s.Run(0)
	if at != 150 {
		t.Errorf("After fired at %d", at)
	}
}

func TestPortSerializationRate(t *testing.T) {
	s := NewSim()
	sink := NewCounter()
	// 8 Mbps link: a 1000-byte packet serializes in 1 ms.
	port := NewPort(s, "out", 8_000, 0, qos.StrictPriority, sink, 0)
	for i := 0; i < 10; i++ {
		port.Send(&Packet{WireSize: 1000, Class: qos.ClassBE})
	}
	end := s.Run(0)
	// 10 packets × 1 ms.
	if end < 9_999_000 || end > 10_100_000 {
		t.Errorf("drain time = %d ns, want ≈10 ms", end)
	}
	if sink.Bytes[qos.ClassBE] != 10_000 {
		t.Errorf("delivered %d bytes", sink.Bytes[qos.ClassBE])
	}
}

func TestPortPriorityUnderOverload(t *testing.T) {
	s := NewSim()
	sink := NewCounter()
	// 8 Mbps output; offer 8 Mbps EER + 8 Mbps BE for 1 s.
	port := NewPort(s, "out", 8_000, 0, qos.StrictPriority, sink, 0)
	mkSrc := func(class qos.Class) *Source {
		return &Source{
			Sim: s, Dst: NodeFunc(func(p *Packet, _ int) { port.Send(p) }),
			RateKbps: 8_000, PktBytes: 1000, StopNs: 1e9,
			Make: func() *Packet { return &Packet{WireSize: 1000, Class: class} },
		}
	}
	mkSrc(qos.ClassEER).Start(0)
	mkSrc(qos.ClassBE).Start(0)
	// Measure what was *delivered* within the offered second; the BE
	// backlog still sitting in the queue does not count.
	s.Run(1e9)
	eer := GbpsOver(sink.Bytes[qos.ClassEER], 1e9)
	be := GbpsOver(sink.Bytes[qos.ClassBE], 1e9)
	// EER must get ≈ the full 8 Mbps = 0.008 Gbps; BE only leftovers.
	if eer < 0.0075 {
		t.Errorf("EER throughput %.4f Gbps under overload", eer)
	}
	if be > eer/4 {
		t.Errorf("BE %.4f Gbps not suppressed below EER %.4f", be, eer)
	}
	if port.sched.QueuedBytes(qos.ClassBE) == 0 {
		t.Error("no BE backlog despite overload")
	}
}

func TestSourceRateAccuracy(t *testing.T) {
	s := NewSim()
	var count int
	src := &Source{
		Sim: s, Dst: NodeFunc(func(*Packet, int) { count++ }),
		RateKbps: 8_000, PktBytes: 1000, StopNs: 1e9,
		Make: func() *Packet { return &Packet{WireSize: 1000, Class: qos.ClassBE} },
	}
	src.Start(0)
	s.Run(2e9)
	// 8 Mbps / 8000 bits per packet = 1000 pps for 1 s.
	if count < 990 || count > 1010 {
		t.Errorf("generated %d packets, want ≈1000", count)
	}
}

func TestCounterLabels(t *testing.T) {
	c := NewCounter()
	c.Receive(&Packet{WireSize: 100, Class: qos.ClassEER, Meta: "res1"}, 0)
	c.Receive(&Packet{WireSize: 200, Class: qos.ClassEER, Meta: "res1"}, 0)
	c.Receive(&Packet{WireSize: 50, Class: qos.ClassBE}, 0)
	if c.ByLabel["res1"] != 300 || c.Bytes[qos.ClassEER] != 300 || c.Bytes[qos.ClassBE] != 50 {
		t.Errorf("counter state: %+v", c)
	}
	c.Reset()
	if c.Bytes[qos.ClassEER] != 0 || len(c.ByLabel) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestGbpsOver(t *testing.T) {
	// 125 MB over 1 s = 1 Gbps.
	if got := GbpsOver(125_000_000, 1e9); got < 0.999 || got > 1.001 {
		t.Errorf("GbpsOver = %f", got)
	}
}
