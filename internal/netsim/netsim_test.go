package netsim

import (
	"testing"

	"colibri/internal/qos"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.At(10, func() { order = append(order, 11) }) // same time: FIFO
	end := s.Run(0)
	if end != 30 {
		t.Errorf("final time = %d", end)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim()
	fired := false
	s.At(100, func() { fired = true })
	if end := s.Run(50); end != 50 {
		t.Errorf("Run(50) = %d", end)
	}
	if fired {
		t.Error("future event fired early")
	}
	if end := s.Run(200); end != 100 {
		t.Errorf("resumed Run = %d", end)
	}
	if !fired {
		t.Error("event never fired")
	}
}

func TestAfterAndPastScheduling(t *testing.T) {
	s := NewSim()
	var at int64
	s.At(100, func() {
		s.After(50, func() { at = s.Now() })
		// Scheduling in the past clamps to now.
		s.At(10, func() {
			if s.Now() != 100 {
				t.Errorf("past event ran at %d", s.Now())
			}
		})
	})
	s.Run(0)
	if at != 150 {
		t.Errorf("After fired at %d", at)
	}
}

func TestPortSerializationRate(t *testing.T) {
	s := NewSim()
	sink := NewCounter()
	// 8 Mbps link: a 1000-byte packet serializes in 1 ms.
	port := NewPort(s, "out", 8_000, 0, qos.StrictPriority, sink, 0)
	for i := 0; i < 10; i++ {
		port.Send(&Packet{WireSize: 1000, Class: qos.ClassBE})
	}
	end := s.Run(0)
	// 10 packets × 1 ms.
	if end < 9_999_000 || end > 10_100_000 {
		t.Errorf("drain time = %d ns, want ≈10 ms", end)
	}
	if sink.Bytes[qos.ClassBE] != 10_000 {
		t.Errorf("delivered %d bytes", sink.Bytes[qos.ClassBE])
	}
}

func TestPortPriorityUnderOverload(t *testing.T) {
	s := NewSim()
	sink := NewCounter()
	// 8 Mbps output; offer 8 Mbps EER + 8 Mbps BE for 1 s.
	port := NewPort(s, "out", 8_000, 0, qos.StrictPriority, sink, 0)
	mkSrc := func(class qos.Class) *Source {
		return &Source{
			Sim: s, Dst: NodeFunc(func(p *Packet, _ int) { port.Send(p) }),
			RateKbps: 8_000, PktBytes: 1000, StopNs: 1e9,
			Make: func() *Packet { return &Packet{WireSize: 1000, Class: class} },
		}
	}
	mkSrc(qos.ClassEER).Start(0)
	mkSrc(qos.ClassBE).Start(0)
	// Measure what was *delivered* within the offered second; the BE
	// backlog still sitting in the queue does not count.
	s.Run(1e9)
	eer := GbpsOver(sink.Bytes[qos.ClassEER], 1e9)
	be := GbpsOver(sink.Bytes[qos.ClassBE], 1e9)
	// EER must get ≈ the full 8 Mbps = 0.008 Gbps; BE only leftovers.
	if eer < 0.0075 {
		t.Errorf("EER throughput %.4f Gbps under overload", eer)
	}
	if be > eer/4 {
		t.Errorf("BE %.4f Gbps not suppressed below EER %.4f", be, eer)
	}
	if port.sched.QueuedBytes(qos.ClassBE) == 0 {
		t.Error("no BE backlog despite overload")
	}
}

func TestSourceRateAccuracy(t *testing.T) {
	s := NewSim()
	var count int
	src := &Source{
		Sim: s, Dst: NodeFunc(func(*Packet, int) { count++ }),
		RateKbps: 8_000, PktBytes: 1000, StopNs: 1e9,
		Make: func() *Packet { return &Packet{WireSize: 1000, Class: qos.ClassBE} },
	}
	src.Start(0)
	s.Run(2e9)
	// 8 Mbps / 8000 bits per packet = 1000 pps for 1 s.
	if count < 990 || count > 1010 {
		t.Errorf("generated %d packets, want ≈1000", count)
	}
}

func TestCounterLabels(t *testing.T) {
	c := NewCounter()
	c.Receive(&Packet{WireSize: 100, Class: qos.ClassEER, Meta: "res1"}, 0)
	c.Receive(&Packet{WireSize: 200, Class: qos.ClassEER, Meta: "res1"}, 0)
	c.Receive(&Packet{WireSize: 50, Class: qos.ClassBE}, 0)
	if c.ByLabel["res1"] != 300 || c.Bytes[qos.ClassEER] != 300 || c.Bytes[qos.ClassBE] != 50 {
		t.Errorf("counter state: %+v", c)
	}
	c.Reset()
	if c.Bytes[qos.ClassEER] != 0 || len(c.ByLabel) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestGbpsOver(t *testing.T) {
	// 125 MB over 1 s = 1 Gbps.
	if got := GbpsOver(125_000_000, 1e9); got < 0.999 || got > 1.001 {
		t.Errorf("GbpsOver = %f", got)
	}
}

// burstRecorder records every delivery call so tests can distinguish
// batched from per-packet delivery.
type burstRecorder struct {
	bursts [][]*Packet
	total  int
	bytes  uint64
}

func (r *burstRecorder) Receive(pkt *Packet, _ int) {
	r.bursts = append(r.bursts, []*Packet{pkt})
	r.total++
	r.bytes += uint64(pkt.WireSize)
}

func (r *burstRecorder) ReceiveBatch(pkts []*Packet, _ int) {
	cp := make([]*Packet, len(pkts)) // pkts is caller-owned; copy for inspection
	copy(cp, pkts)
	r.bursts = append(r.bursts, cp)
	r.total += len(pkts)
	for _, p := range pkts {
		r.bytes += uint64(p.WireSize)
	}
}

func TestPortBurstCoalescing(t *testing.T) {
	s := NewSim()
	rec := &burstRecorder{}
	// 8 Mbps link: a 1000-byte packet serializes in 1 ms.
	port := NewPort(s, "out", 8_000, 0, qos.StrictPriority, rec, 0)
	port.SetBurst(4)
	for i := 0; i < 8; i++ {
		port.Send(&Packet{WireSize: 1000, Class: qos.ClassBE})
	}
	end := s.Run(0)
	// Serialization time is per byte, burst or not: 8 × 1 ms.
	if end < 7_999_000 || end > 8_100_000 {
		t.Errorf("drain time = %d ns, want ≈8 ms", end)
	}
	if rec.total != 8 || rec.bytes != 8_000 {
		t.Errorf("delivered %d packets / %d bytes", rec.total, rec.bytes)
	}
	// The port is work-conserving: the first Send starts serializing the
	// lone queued packet right away; the remaining 7 coalesce into bursts
	// of up to 4 → deliveries of [1 4 3].
	sizes := make([]int, len(rec.bursts))
	for i, b := range rec.bursts {
		sizes[i] = len(b)
	}
	if len(sizes) != 3 || sizes[0] != 1 || sizes[1] != 4 || sizes[2] != 3 {
		t.Errorf("burst sizes = %v, want [1 4 3]", sizes)
	}
	if port.Sent[qos.ClassBE] != 8_000 {
		t.Errorf("Sent[BE] = %d", port.Sent[qos.ClassBE])
	}
}

func TestPortBurstFallbackToReceive(t *testing.T) {
	s := NewSim()
	var got []*Packet
	// Destination implements only Node: bursts must fall back to
	// per-packet Receive calls, in FIFO order.
	dst := NodeFunc(func(p *Packet, _ int) { got = append(got, p) })
	port := NewPort(s, "out", 8_000, 0, qos.StrictPriority, dst, 0)
	port.SetBurst(4)
	want := make([]*Packet, 6)
	for i := range want {
		want[i] = &Packet{WireSize: 1000, Class: qos.ClassBE, Meta: i}
		port.Send(want[i])
	}
	s.Run(0)
	if len(got) != len(want) {
		t.Fatalf("delivered %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packet %d out of order: got Meta=%v", i, got[i].Meta)
		}
	}
}

func TestSourceBurstRateInvariant(t *testing.T) {
	for _, burst := range []int{1, 8} {
		s := NewSim()
		rec := &burstRecorder{}
		src := &Source{
			Sim: s, Dst: rec,
			RateKbps: 8_000, PktBytes: 1000, StopNs: 1e9,
			Make:  func() *Packet { return &Packet{WireSize: 1000, Class: qos.ClassBE} },
			Burst: burst,
		}
		src.Start(0)
		s.Run(2e9)
		// 8 Mbps / 8000 bits per packet = 1000 pps regardless of burst.
		if rec.total < 990 || rec.total > 1010 {
			t.Errorf("burst %d: generated %d packets, want ≈1000", burst, rec.total)
		}
		if burst > 1 {
			for i, b := range rec.bursts {
				if len(b) != burst {
					t.Fatalf("burst %d: delivery %d carried %d packets", burst, i, len(b))
				}
			}
		}
	}
}
