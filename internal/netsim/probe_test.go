package netsim

import (
	"testing"

	"colibri/internal/qos"
	"colibri/internal/telemetry"
)

// TestProbeSampling: an overloaded port sampled every virtual millisecond
// must account every delivered byte in the sent_bytes counter, every
// rejected packet in drop_pkts, and record nonzero queue depths while the
// backlog drains.
func TestProbeSampling(t *testing.T) {
	s := NewSim()
	sink := NewCounter()
	// 8 Mbps output; offer 800 Mbps of BE for 1 s so the backlog overflows
	// the default 20 MB class limit and the scheduler tail-drops.
	port := NewPort(s, "out", 8_000, 0, qos.StrictPriority, sink, 0)
	src := &Source{
		Sim: s, Dst: NodeFunc(func(p *Packet, _ int) { port.Send(p) }),
		RateKbps: 800_000, PktBytes: 1000, StopNs: 1e9,
		Make: func() *Packet { return &Packet{WireSize: 1000, Class: qos.ClassBE} },
	}
	src.Start(0)

	reg := telemetry.NewRegistry("test")
	probe := NewProbe(s, reg, 1e6)
	probe.Watch(port)
	probe.Start(2e9)
	s.Run(2e9)
	probe.sample() // close the last delta window

	snap := reg.Snapshot()
	be := qos.ClassBE.String()
	// The probe mirrors Port.Sent (bytes put on the link), which may lead
	// the sink by the one packet still serializing when the run stops.
	if got := snap.Counters["netsim.out.sent_bytes."+be]; got != port.Sent[qos.ClassBE] {
		t.Errorf("sent_bytes = %d, port sent %d", got, port.Sent[qos.ClassBE])
	}
	if sink.Bytes[qos.ClassBE] == 0 {
		t.Error("nothing delivered to the sink")
	}
	if got, want := snap.Counters["netsim.out.drop_pkts."+be], port.Drops()[qos.ClassBE]; got != want {
		t.Errorf("drop_pkts = %d, scheduler dropped %d", got, want)
	}
	if port.Drops()[qos.ClassBE] == 0 {
		t.Error("overload produced no drops; probe drop path untested")
	}
	h := snap.Histograms["netsim.out.queued_bytes."+be]
	if h.Count == 0 || h.Max == 0 {
		t.Errorf("queue-depth histogram empty: %+v", h)
	}
	// EER stayed idle: its instruments exist but hold zeros.
	eer := qos.ClassEER.String()
	if snap.Counters["netsim.out.sent_bytes."+eer] != 0 {
		t.Error("idle class accumulated bytes")
	}
}

// TestProbeStopsAtDeadline: once stopNs passes, the probe must not keep the
// event loop alive.
func TestProbeStopsAtDeadline(t *testing.T) {
	s := NewSim()
	sink := NewCounter()
	port := NewPort(s, "out", 8_000, 0, qos.StrictPriority, sink, 0)
	probe := NewProbe(s, telemetry.NewRegistry("test"), 1e6)
	probe.Watch(port)
	probe.Start(5e6)
	if end := s.Run(0); end > 5e6 {
		t.Errorf("probe ticks ran until %d ns, past the 5 ms deadline", end)
	}
}
