package netsim

import (
	"fmt"
	"strings"
	"testing"

	"colibri/internal/qos"
	"colibri/internal/telemetry"
)

// ringScenario builds a ring of 5 shards (the root plus four more), each with
// a rate source, a forwarding router, a sink counter, and a port to the next
// member. Packets carry a seeded hop count and class; routers decrement hops
// and forward until the packet sinks locally. Link latencies differ per hop
// (1.0–1.8 ms) so the safe window (1 ms) spans several hops' activity.
//
// variant selects the fault treatment:
//
//	"clean"       perfect links
//	"loss-jitter" 5% loss and up to 0.3 ms jitter on every ring link
//	"partition"   links 2→3 and 3→4 down during [5 ms, 10 ms)
//	"crash"       member 1's router detached during [5 ms, 12 ms)
func ringScenario(seed uint64, variant string) Scenario {
	return func(s *Sim) func() string {
		const n = 5
		const stop = 20e6 // 20 ms of traffic

		members := make([]*Shard, n)
		members[0] = s.Root()
		for i := 1; i < n; i++ {
			members[i] = s.NewShard()
		}

		sinks := make([]*Counter, n)
		ports := make([]*Port, n)
		routers := make([]Node, n)
		for i := 0; i < n; i++ {
			sinks[i] = NewCounter()
			i := i
			routers[i] = NodeFunc(func(pkt *Packet, _ int) {
				hops := pkt.Meta.(int)
				if hops <= 0 {
					sinks[i].Receive(pkt, 0)
					return
				}
				pkt.Meta = hops - 1
				ports[i].Send(pkt)
			})
		}

		var det *Detachable
		if variant == "crash" {
			det = NewDetachable(routers[1])
			members[1].At(5e6, det.Detach)
			members[1].At(12e6, det.Attach)
		}

		for i := 0; i < n; i++ {
			next := (i + 1) % n
			dst := routers[next]
			if det != nil && next == 1 {
				dst = det
			}
			lat := int64(1e6 + float64(i)*2e5)
			ports[i] = NewShardPort(members[i], fmt.Sprintf("ring%d", i),
				100_000, lat, qos.StrictPriority, dst, members[next], 0)
			if variant == "loss-jitter" {
				ports[i].SetFaults(NewFaultPlan(seed*31 + uint64(i)).SetLoss(0.05).SetJitter(3e5))
			}
		}
		if variant == "partition" {
			Partition(5e6, 10e6, ports[2], ports[3])
		}

		for i := 0; i < n; i++ {
			rng := NewRand(seed + uint64(i)*1013)
			src := &Source{
				Sim:      s,
				Dst:      routers[i],
				Shard:    members[i],
				RateKbps: 40_000,
				PktBytes: 500,
				StopNs:   stop,
				Make: func() *Packet {
					return &Packet{
						WireSize: 500,
						Class:    qos.Class(rng.Uint64() % uint64(qos.NumClasses)),
						Meta:     1 + int(rng.Uint64()%uint64(2*n)),
					}
				},
			}
			src.Start(1000)
		}

		return func() string {
			var b strings.Builder
			for i := 0; i < n; i++ {
				fmt.Fprintf(&b, "m%d sink=%v sent=%v drops=%v\n",
					i, sinks[i].Bytes, ports[i].Sent, ports[i].Drops())
			}
			if det != nil {
				fmt.Fprintf(&b, "det dropped=%d\n", det.Dropped)
			}
			return b.String()
		}
	}
}

// starScenario builds a hub (root shard) and 6 leaves with *identical* link
// latencies, rates, and start times, so deliveries from every leaf reach the
// hub at exactly the same timestamps: the (dst, src, seq) tie-break carries
// the full ordering burden. The hub's router is stateful (a modulo counter
// choosing which leaf gets an echo), so any ordering divergence immediately
// changes user-visible state, not just traces.
func starScenario(seed uint64, variant string) Scenario {
	return func(s *Sim) func() string {
		const leaves = 6
		const stop = 15e6

		hub := s.Root()
		hubSink := NewCounter()
		back := make([]*Port, leaves)
		leafSinks := make([]*Counter, leaves)
		up := make([]*Port, leaves)

		var echoed int
		hubRouter := NodeFunc(func(pkt *Packet, _ int) {
			hubSink.Receive(pkt, 0)
			echoed++
			if echoed%3 == 0 {
				back[echoed/3%leaves].Send(&Packet{WireSize: 200, Class: pkt.Class})
			}
		})

		for i := 0; i < leaves; i++ {
			leaf := s.NewShard()
			leafSinks[i] = NewCounter()
			up[i] = NewShardPort(leaf, fmt.Sprintf("up%d", i),
				80_000, 1e6, qos.StrictPriority, hubRouter, hub, 0)
			back[i] = NewShardPort(hub, fmt.Sprintf("down%d", i),
				80_000, 1e6, qos.StrictPriority, leafSinks[i], leaf, 0)
			if variant == "loss" {
				up[i].SetFaults(NewFaultPlan(seed ^ uint64(i)<<8).SetLoss(0.1))
			}

			rng := NewRand(seed*7 + uint64(i))
			port := up[i]
			src := &Source{
				Sim:      s,
				Dst:      NodeFunc(func(pkt *Packet, _ int) { port.Send(pkt) }),
				Shard:    leaf,
				RateKbps: 20_000,
				PktBytes: 400,
				StopNs:   stop,
				Make: func() *Packet {
					return &Packet{
						WireSize: 400,
						Class:    qos.Class(rng.Uint64() % uint64(qos.NumClasses)),
					}
				},
			}
			src.Start(1000) // identical start on every leaf → timestamp collisions
		}

		return func() string {
			var b strings.Builder
			fmt.Fprintf(&b, "hub sink=%v echoed=%d\n", hubSink.Bytes, echoed)
			for i := 0; i < leaves; i++ {
				fmt.Fprintf(&b, "leaf%d sink=%v up=%v drops=%v\n",
					i, leafSinks[i].Bytes, up[i].Sent, up[i].Drops())
			}
			return b.String()
		}
	}
}

// equivVariants is the table of topology × fault treatments the equivalence
// suite sweeps. Shared with the fuzz harness.
var equivVariants = []struct {
	name  string
	build func(seed uint64) Scenario
}{
	{"ring/clean", func(seed uint64) Scenario { return ringScenario(seed, "clean") }},
	{"ring/loss-jitter", func(seed uint64) Scenario { return ringScenario(seed, "loss-jitter") }},
	{"ring/partition", func(seed uint64) Scenario { return ringScenario(seed, "partition") }},
	{"ring/crash", func(seed uint64) Scenario { return ringScenario(seed, "crash") }},
	{"star/clean", func(seed uint64) Scenario { return starScenario(seed, "clean") }},
	{"star/loss", func(seed uint64) Scenario { return starScenario(seed, "loss") }},
}

// TestParallelEquivalence is the tentpole guarantee: for every variant and
// seed, the parallel engine's full event trace and final user-visible state
// are bit-identical to the sequential engine's.
func TestParallelEquivalence(t *testing.T) {
	for _, v := range equivVariants {
		for seed := uint64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", v.name, seed), func(t *testing.T) {
				r, err := RunBoth(0, 4, v.build(seed))
				if err != nil {
					t.Fatal(err)
				}
				if r.SeqEvents < 500 {
					t.Fatalf("scenario too small to be meaningful: %d events", r.SeqEvents)
				}
			})
		}
	}
}

// TestParallelWorkerCounts checks the trace is invariant under the worker
// count (the schedule must not leak into the simulation).
func TestParallelWorkerCounts(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			if _, err := RunBoth(0, workers, ringScenario(42, "loss-jitter")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestParallelUntil checks time-bounded runs: both engines stop at the same
// virtual time with the same partial trace, and resuming afterwards (even
// switching engines mid-simulation) still converges to the sequential result.
func TestParallelUntil(t *testing.T) {
	scenario := ringScenario(7, "clean")

	seq := NewSim()
	seq.EnableTrace()
	seqDigest := scenario(seq)
	seqEnd := seq.Run(0)

	par := NewSim()
	par.EnableTrace()
	parDigest := scenario(par)
	if got, want := par.RunParallel(8e6, 4), int64(8e6); got != want {
		t.Fatalf("RunParallel(8ms) ended at %d, want %d", got, want)
	}
	mid := par.Run(12e6) // sequential leg over the same shard state
	if mid != 12e6 {
		t.Fatalf("Run(12ms) ended at %d", mid)
	}
	parEnd := par.RunParallel(0, 4)

	if parEnd != seqEnd {
		t.Fatalf("final time diverges: seq=%d par=%d", seqEnd, parEnd)
	}
	if s, p := seqDigest(), parDigest(); s != p {
		t.Fatalf("state digest diverges after engine switching:\nseq: %s\npar: %s", s, p)
	}
	st, pt := seq.Trace(), par.Trace()
	if len(st) != len(pt) {
		t.Fatalf("trace lengths diverge: seq=%d par=%d", len(st), len(pt))
	}
	for i := range st {
		if st[i] != pt[i] {
			t.Fatalf("trace diverges at %d: seq(%s) par(%s)", i, st[i], pt[i])
		}
	}
}

// TestParallelTelemetry checks the engine's instruments: windows advance,
// the safe-window gauge equals the declared lookahead, and per-worker
// occupancy counters sum to the executed-event total.
func TestParallelTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry("test")
	s := NewSim()
	s.SetTelemetry(reg)
	scenario := ringScenario(3, "clean")
	scenario(s)
	s.RunParallel(0, 4)

	snap := reg.Snapshot()
	if snap.Counters["netsim.par.windows"] < 2 {
		t.Fatalf("expected multiple safe windows, got %d", snap.Counters["netsim.par.windows"])
	}
	if got := snap.Gauges["netsim.par.safe_window_ns"]; got != 1e6 {
		t.Fatalf("safe_window_ns = %d, want 1e6 (min ring latency)", got)
	}
	var workerSum uint64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "netsim.par.worker") {
			workerSum += v
		}
	}
	if workerSum != s.Executed() {
		t.Fatalf("worker occupancy sum %d != executed %d", workerSum, s.Executed())
	}
}

// TestCrossLookaheadViolation checks the guard rails fire identically under
// both engines: scheduling a cross-shard event closer than the lookahead
// panics during Run and during RunParallel.
func TestCrossLookaheadViolation(t *testing.T) {
	build := func() (*Sim, *Shard) {
		s := NewSim()
		sh := s.NewShard()
		s.SetLookahead(1000)
		s.Root().At(500, func() {
			s.Root().Cross(sh, 600, func() {}) // 600 < 500+1000
		})
		return s, sh
	}
	for _, engine := range []string{"seq", "par"} {
		t.Run(engine, func(t *testing.T) {
			s, _ := build()
			defer func() {
				if recover() == nil {
					t.Fatal("expected lookahead-violation panic")
				}
			}()
			if engine == "seq" {
				s.Run(0)
			} else {
				s.RunParallel(0, 2)
			}
		})
	}
}

// TestSimNowPanicsInsideWindow checks the loud-misuse guard: global-clock
// reads from inside a parallel window of a multi-shard simulation panic.
func TestSimNowPanicsInsideWindow(t *testing.T) {
	s := NewSim()
	sh := s.NewShard()
	s.SetLookahead(1000)
	panicked := false
	sh.At(10, func() {
		defer func() { panicked = recover() != nil }()
		s.Now()
	})
	s.RunParallel(0, 2)
	if !panicked {
		t.Fatal("Sim.Now inside a parallel window should panic")
	}
}
