package netsim

import (
	"testing"

	"colibri/internal/qos"
)

func TestPortPropagationLatency(t *testing.T) {
	s := NewSim()
	var deliveredAt int64 = -1
	sink := NodeFunc(func(*Packet, int) { deliveredAt = s.Now() })
	// 8 Mbps link with 5 ms propagation: a 1000-byte packet takes
	// 1 ms serialization + 5 ms propagation.
	port := NewPort(s, "out", 8_000, 5e6, qos.StrictPriority, sink, 0)
	port.Send(&Packet{WireSize: 1000, Class: qos.ClassBE})
	s.Run(0)
	if deliveredAt < 5_900_000 || deliveredAt > 6_100_000 {
		t.Errorf("delivered at %d ns, want ≈6 ms", deliveredAt)
	}
}

func TestPortSentCounters(t *testing.T) {
	s := NewSim()
	sink := NewCounter()
	port := NewPort(s, "out", 1_000_000, 0, qos.StrictPriority, sink, 0)
	port.Send(&Packet{WireSize: 500, Class: qos.ClassEER})
	port.Send(&Packet{WireSize: 300, Class: qos.ClassControl})
	s.Run(0)
	if port.Sent[qos.ClassEER] != 500 || port.Sent[qos.ClassControl] != 300 {
		t.Errorf("Sent = %v", port.Sent)
	}
	if port.String() != "port(out)" {
		t.Errorf("String = %q", port.String())
	}
	if d := port.Drops(); d[qos.ClassEER] != 0 {
		t.Errorf("Drops = %v", d)
	}
}

func TestZeroRateSourceGeneratesNothing(t *testing.T) {
	s := NewSim()
	count := 0
	(&Source{
		Sim: s, Dst: NodeFunc(func(*Packet, int) { count++ }),
		RateKbps: 0, PktBytes: 100, StopNs: 1e9,
		Make: func() *Packet { return &Packet{WireSize: 100} },
	}).Start(0)
	s.Run(0)
	if count != 0 {
		t.Errorf("zero-rate source generated %d packets", count)
	}
}
