// engine_par.go — the parallel execution engine: conservative safe-window
// synchronization (classic PDES lookahead).
//
// Each window executes every event with timestamp in [T, T+lookahead), where
// T is the earliest pending event and lookahead is the minimum cross-shard
// link latency. Within the window, shards are independent: a cross-shard
// child is always scheduled ≥ lookahead in the future (enforced by
// Shard.Cross), so it lands at or after the window end and cannot be missed
// or raced; same-shard children landing inside the window are executed by
// the owning worker in key order. Workers drain disjoint shard heaps, buffer
// cross-shard events in per-shard outboxes, and a single-threaded merge
// moves outboxes into target heaps after the barrier. Event keys — assigned
// from shard-owned channel counters — are byte-identical to the sequential
// engine's, so traces and final state are too (DESIGN.md §6).
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"sync"

	"colibri/internal/telemetry"
)

// parTelemetry holds the parallel engine's instruments: safe-window and
// occupancy visibility for scale runs. Recording happens from workers
// (telemetry counters are concurrency-safe) and from the coordinator between
// windows; none of it feeds back into the simulation, so traces stay
// engine- and schedule-independent.
type parTelemetry struct {
	reg          *telemetry.Registry
	windows      *telemetry.Counter
	safeWindowNs *telemetry.Gauge
	activeShards *telemetry.Gauge
	windowEvents *telemetry.Histogram
	workerEvents []*telemetry.Counter
}

// SetTelemetry attaches instruments for the parallel engine:
// netsim.par.{windows,safe_window_ns,active_shards,window_events} plus one
// netsim.par.worker<N>.events counter per worker. Nil disables (default).
func (s *Sim) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.tel = nil
		return
	}
	s.tel = &parTelemetry{
		reg:          reg,
		windows:      reg.Counter("netsim.par.windows"),
		safeWindowNs: reg.Gauge("netsim.par.safe_window_ns"),
		activeShards: reg.Gauge("netsim.par.active_shards"),
		windowEvents: reg.Histogram("netsim.par.window_events"),
	}
}

// ensureWorkers sizes the per-worker occupancy counters. Worker indices are
// bounded by the RunParallel workers argument, so the dynamic name part
// cannot run away (same discipline as Probe.Watch's per-port names).
func (t *parTelemetry) ensureWorkers(n int) {
	for w := len(t.workerEvents); w < n; w++ {
		name := fmt.Sprintf("netsim.par.worker%d.events", w)
		t.workerEvents = append(t.workerEvents, t.reg.Counter(name)) //colibri:allow(telemetry)
	}
}

// RunParallel executes events on a pool of `workers` goroutines using
// safe-window synchronization, until the queue empties or virtual time
// exceeds until (0 = run to completion). It returns the final time.
//
// The result — final state, event trace, return value — is bit-identical to
// Run for any topology, seed, and fault plan, provided shard discipline
// holds: every piece of state is owned by one shard and only touched by that
// shard's events (cross-shard ports are the supported interaction channel).
// Single-shard simulations fall back to the sequential engine.
func (s *Sim) RunParallel(until int64, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	if len(s.shards) == 1 {
		return s.Run(until)
	}
	s.running = true
	s.par = true
	defer func() {
		// Return leftover events (beyond `until`) to the global heap so a
		// later Run/RunParallel resumes seamlessly.
		for _, sh := range s.shards {
			s.pq = append(s.pq, sh.pq...)
			sh.pq = sh.pq[:0]
		}
		heap.Init(&s.pq)
		s.par = false
		s.running = false
		s.cur = s.shards[0]
	}()

	// Redistribute the global heap into per-shard heaps.
	for _, ev := range s.pq {
		sh := s.shards[ev.dst]
		sh.pq = append(sh.pq, ev)
	}
	s.pq = s.pq[:0]
	for _, sh := range s.shards {
		heap.Init(&sh.pq)
	}

	if s.tel != nil {
		s.tel.ensureWorkers(workers)
	}

	// Persistent worker pool: workers pull chunks of shards from one work
	// channel (a single receive — no select — so no scheduler-order
	// dependence can leak into the simulation) and signal completion via
	// the window barrier. Which worker runs which shard is scheduling-
	// dependent, but only the occupancy counters can see that.
	work := make(chan []*Shard) //colibri:unbounded(rendezvous: the coordinator hands one chunk per ready worker and blocks until taken — buffering would let a window's chunks outlive its barrier)
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicVal any
	for w := 0; w < workers; w++ {
		go func(id int) {
			for chunk := range work {
				func() {
					// Re-raise event-callback panics on the coordinator
					// (below, after the barrier) so callers see the same
					// panic the sequential engine would raise inline.
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicVal == nil {
								panicVal = r
							}
							panicMu.Unlock()
						}
						wg.Done()
					}()
					var n uint64
					for _, sh := range chunk {
						n += sh.runWindow()
					}
					if s.tel != nil {
						s.tel.workerEvents[id].Add(n)
					}
				}()
			}
		}(w)
	}
	defer close(work)

	active := make([]*Shard, 0, len(s.shards))
	for {
		// Earliest pending event across all shard heaps.
		var T int64
		found := false
		for _, sh := range s.shards {
			if len(sh.pq) > 0 && (!found || sh.pq[0].at < T) {
				T = sh.pq[0].at
				found = true
			}
		}
		if !found {
			return s.now
		}
		if until > 0 && T > until {
			s.now = until
			return s.now
		}
		end := T + s.lookahead
		if s.lookahead == math.MaxInt64 || end < T { // no cross edges / overflow
			end = math.MaxInt64
		}
		if until > 0 && end > until+1 {
			end = until + 1 // events at exactly `until` still run, as in Run
		}
		s.now = T // shards read this through Shard.Now; stable during the window

		active = active[:0]
		for _, sh := range s.shards {
			if len(sh.pq) > 0 && sh.pq[0].at < end {
				sh.winEnd = end
				active = append(active, sh)
			}
		}

		s.inWindow = true
		chunk := len(active)/(workers*4) + 1
		for i := 0; i < len(active); i += chunk {
			j := i + chunk
			if j > len(active) {
				j = len(active)
			}
			wg.Add(1)
			work <- active[i:j]
		}
		wg.Wait()
		s.inWindow = false
		if panicVal != nil {
			panic(panicVal)
		}

		// Deterministic merge: move outboxed cross-shard events into their
		// target heaps. Keys were already assigned by the (deterministic)
		// source shards, so insertion order is irrelevant; the lookahead
		// guarantee makes every entry land at or beyond the window end.
		maxNow := s.now
		var windowEvents uint64
		for _, sh := range active {
			if sh.now > maxNow {
				maxNow = sh.now
			}
			windowEvents += sh.windowExecuted
			for _, ev := range sh.outbox {
				if ev.at < end {
					panic(fmt.Sprintf("netsim: merge found cross-shard event at t=%d inside window ending %d", ev.at, end))
				}
				heap.Push(&s.shards[ev.dst].pq, ev)
			}
			sh.outbox = sh.outbox[:0]
		}
		s.now = maxNow
		if s.tel != nil {
			s.tel.windows.Inc()
			s.tel.safeWindowNs.Set(end - T)
			s.tel.activeShards.Set(int64(len(active)))
			s.tel.windowEvents.Observe(int64(windowEvents))
		}
	}
}

// runWindow drains this shard's events with timestamps inside the current
// safe window, in key order. Executed entirely by one worker; the only state
// it touches outside the shard is the outbox (merged later, single-threaded)
// and the concurrency-safe telemetry counters.
func (sh *Shard) runWindow() uint64 {
	var n uint64
	for len(sh.pq) > 0 && sh.pq[0].at < sh.winEnd {
		ev := heap.Pop(&sh.pq).(*event)
		sh.now = ev.at
		sh.executed++
		if sh.sim.traceOn {
			sh.trace = append(sh.trace, TraceEntry{At: ev.at, Dst: ev.dst, Src: ev.src, Seq: ev.seq})
		}
		ev.fn()
		n++
	}
	sh.windowExecuted = n
	return n
}
