package netsim

import (
	"fmt"
	"math"
	"testing"

	"colibri/internal/qos"
)

// traceSink records every delivery as (time, class, size) so two runs can
// be compared event-for-event.
type traceSink struct {
	sim   *Sim
	trace []string
	bytes uint64
}

func (t *traceSink) Receive(pkt *Packet, _ int) {
	t.trace = append(t.trace, fmt.Sprintf("%d/%d/%d", t.sim.Now(), pkt.Class, pkt.WireSize))
	t.bytes += uint64(pkt.WireSize)
}

// chaosRun builds a two-hop chain src → portA → relay → portB → sink with
// loss+jitter on A, a down window on B, and a mid-run detach of the sink,
// then returns the delivery trace and fault counters.
func chaosRun(seed uint64) (trace []string, counters [4]uint64) {
	sim := NewSim()
	sink := &traceSink{sim: sim}
	det := NewDetachable(sink)

	portB := NewPort(sim, "B", 40_000_000, 2_000, qos.StrictPriority, det, 0)
	planB := NewFaultPlan(seed+1).AddDown(2_000_000, 4_000_000)
	portB.SetFaults(planB)

	relay := NodeFunc(func(pkt *Packet, _ int) { portB.Send(pkt) })
	portA := NewPort(sim, "A", 40_000_000, 1_000, qos.StrictPriority, relay, 0)
	planA := NewFaultPlan(seed).SetLoss(0.05).SetJitter(500)
	portA.SetFaults(planA)

	src := &Source{
		Sim: sim, Dst: NodeFunc(func(pkt *Packet, _ int) { portA.Send(pkt) }),
		RateKbps: 1_000_000, PktBytes: 500, StopNs: 10_000_000,
		Make: func() *Packet { return &Packet{WireSize: 500, Class: qos.ClassEER} },
	}
	src.Start(0)
	sim.At(6_000_000, det.Detach)
	sim.At(8_000_000, det.Attach)
	sim.Run(0)
	return sink.trace, [4]uint64{planA.LossDrops, planB.DownDrops, det.Dropped, sink.bytes}
}

func TestFaultDeterminism(t *testing.T) {
	t1, c1 := chaosRun(42)
	t2, c2 := chaosRun(42)
	if c1 != c2 {
		t.Fatalf("same seed produced different counters: %v vs %v", c1, c2)
	}
	if len(t1) != len(t2) {
		t.Fatalf("same seed produced different trace lengths: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverges at event %d: %q vs %q", i, t1[i], t2[i])
		}
	}
	// Sanity: every fault mechanism actually fired.
	if c1[0] == 0 || c1[1] == 0 || c1[2] == 0 {
		t.Fatalf("expected loss, down-window, and detach drops all nonzero, got %v", c1)
	}
	// And a different seed takes a different sample path.
	t3, _ := chaosRun(43)
	same := len(t1) == len(t3)
	if same {
		for i := range t1 {
			if t1[i] != t3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFaultLossRate(t *testing.T) {
	fp := NewFaultPlan(7).SetLoss(0.1)
	const n = 200_000
	drops := 0
	for i := 0; i < n; i++ {
		if !fp.Admit(0) {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-0.1) > 0.005 {
		t.Fatalf("loss rate %.4f, want ≈0.10", got)
	}
	if fp.LossDrops != uint64(drops) {
		t.Fatalf("LossDrops=%d, counted %d", fp.LossDrops, drops)
	}
}

func TestFaultDownWindow(t *testing.T) {
	fp := NewFaultPlan(1).AddDown(100, 200)
	for _, tc := range []struct {
		t  int64
		up bool
	}{{99, true}, {100, false}, {199, false}, {200, true}} {
		if fp.Up(tc.t) != tc.up {
			t.Fatalf("Up(%d)=%v, want %v", tc.t, !tc.up, tc.up)
		}
		if fp.Admit(tc.t) != tc.up {
			t.Fatalf("Admit(%d)=%v, want %v", tc.t, !tc.up, tc.up)
		}
	}
	if fp.DownDrops != 2 {
		t.Fatalf("DownDrops=%d, want 2", fp.DownDrops)
	}
}

func TestPartitionHelper(t *testing.T) {
	sim := NewSim()
	sink := NewCounter()
	a := NewPort(sim, "a", 1_000_000, 0, qos.StrictPriority, sink, 0)
	b := NewPort(sim, "b", 1_000_000, 0, qos.StrictPriority, sink, 0)
	Partition(10, 20, a, b)
	for _, p := range []*Port{a, b} {
		if p.Faults() == nil || p.Faults().Up(15) {
			t.Fatalf("port %s not downed by partition", p.Name())
		}
		if !p.Faults().Up(25) {
			t.Fatalf("port %s still down after partition heals", p.Name())
		}
	}
}

func TestDetachableDropsWhileDown(t *testing.T) {
	sink := NewCounter()
	d := NewDetachable(sink)
	pkt := &Packet{WireSize: 100, Class: qos.ClassBE}
	d.Receive(pkt, 0)
	d.Detach()
	d.Receive(pkt, 0)
	d.ReceiveBatch([]*Packet{pkt, pkt}, 0)
	d.Attach()
	d.ReceiveBatch([]*Packet{pkt, pkt}, 0)
	if d.Dropped != 3 {
		t.Fatalf("Dropped=%d, want 3", d.Dropped)
	}
	if sink.Bytes[qos.ClassBE] != 300 {
		t.Fatalf("delivered %d bytes, want 300", sink.Bytes[qos.ClassBE])
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds produced identical first values")
	}
}
