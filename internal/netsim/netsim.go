// Package netsim is a discrete-event network simulator: virtual time, nodes
// exchanging packets over links with finite capacity and propagation delay,
// and per-output-port traffic-class scheduling (package qos).
//
// It stands in for the paper's hardware testbed (Spirent traffic generator,
// 40 Gbps links) in the data-plane protection experiment (Table 2) and the
// examples: the quantity those measure is which traffic *class* obtains the
// output link under contention, which the simulated schedulers reproduce
// exactly. Packets carry real header bytes (so the full cryptographic
// data-plane runs) plus a virtual wire size, so multi-Gbps loads simulate in
// milliseconds of CPU time.
//
// The simulator has two execution engines over one event core (shard.go):
// the sequential reference engine (Sim.Run) and a safe-window parallel
// engine (Sim.RunParallel) for thousand-AS topologies, proven bit-identical
// by the RunBoth differential harness (equiv.go, DESIGN.md §6). Simulation
// state is partitioned into shards (one per simulated AS in scale runs);
// everything built without explicit shards lives on the root shard and runs
// exactly as the classic single-threaded simulator.
package netsim

import (
	"fmt"

	"colibri/internal/qos"
)

// Packet is one simulated packet: Header carries the real Colibri bytes (so
// routers run the actual cryptographic hot path); WireSize is the modelled
// on-wire size in bytes (headers + possibly virtual payload).
type Packet struct {
	Header   []byte
	WireSize int
	Class    qos.Class
	// Meta carries scenario-specific annotations (e.g., flow labels for
	// accounting at sinks).
	Meta any
}

// Node consumes packets delivered by ports.
type Node interface {
	// Receive is called inside the event loop when a packet arrives at the
	// node via the given input port index.
	Receive(pkt *Packet, inPort int)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(pkt *Packet, inPort int)

// Receive implements Node.
func (f NodeFunc) Receive(pkt *Packet, inPort int) { f(pkt, inPort) }

// BatchNode is implemented by nodes that can consume a whole burst at
// once (e.g. a router node driving Worker.ProcessBatch). Ports and
// sources with a burst factor > 1 deliver through ReceiveBatch when the
// destination implements it, falling back to per-packet Receive calls
// otherwise. The pkts slice is owned by the caller and must not be
// retained past the call.
type BatchNode interface {
	Node
	ReceiveBatch(pkts []*Packet, inPort int)
}

// deliverBurst hands a burst to dst, batched when supported.
func deliverBurst(dst Node, pkts []*Packet, inPort int) {
	if bn, ok := dst.(BatchNode); ok && len(pkts) > 1 {
		bn.ReceiveBatch(pkts, inPort)
		return
	}
	for _, pkt := range pkts {
		dst.Receive(pkt, inPort)
	}
}

// Port is one output port: a class scheduler draining onto a link of fixed
// capacity and latency towards a destination node. A port belongs to the
// shard of its *sending* node (src): Send must only be called from that
// shard's event callbacks (or from setup code), and all port state lives
// there. Delivery to a destination on another shard crosses via the
// lookahead-respecting event channel.
type Port struct {
	src          *Shard // owning (sending-side) shard
	dstSh        *Shard // shard the destination node belongs to
	name         string
	capBitsPerNs float64 // link capacity in bits per nanosecond
	latencyNs    int64
	sched        *qos.Scheduler[*Packet]
	busy         bool
	dst          Node
	dstPort      int
	// burst is the maximum number of queued packets coalesced into one
	// transmission event (1 = per-packet events, the default).
	burst int
	// free recycles burst slices between events, keeping burst delivery
	// allocation-free in steady state. Cross-shard ports cannot recycle
	// (the slice is consumed on the destination shard), so their pool
	// stays empty and takeBurst allocates.
	free [][]*Packet
	// faults optionally injects loss, jitter, and down windows (see
	// faults.go); nil means a perfect link. Owned by the sending shard.
	faults *FaultPlan

	// Sent counts delivered bytes per class (at the sending side).
	Sent [qos.NumClasses]uint64
}

// NewPort creates an output port on sim's root shard with the given link
// capacity (kbps), propagation latency, scheduling policy, and destination.
func NewPort(sim *Sim, name string, capacityKbps uint64, latencyNs int64, policy qos.Policy, dst Node, dstPort int) *Port {
	return NewShardPort(sim.Root(), name, capacityKbps, latencyNs, policy, dst, sim.Root(), dstPort)
}

// NewShardPort creates an output port owned by the src shard whose
// destination node lives on dstSh. Cross-shard ports must have a positive
// propagation latency: the minimum such latency across the simulation is
// the parallel engine's lookahead (the safe-window width).
func NewShardPort(src *Shard, name string, capacityKbps uint64, latencyNs int64, policy qos.Policy, dst Node, dstSh *Shard, dstPort int) *Port {
	if src.sim != dstSh.sim {
		panic("netsim: port shards belong to different simulators")
	}
	if src != dstSh {
		if latencyNs < 1 {
			panic("netsim: cross-shard ports need positive latency (it bounds the safe window)")
		}
		src.sim.noteLookahead(latencyNs)
	}
	return &Port{
		src:          src,
		dstSh:        dstSh,
		name:         name,
		capBitsPerNs: float64(capacityKbps) * 1000 / 1e9,
		latencyNs:    latencyNs,
		sched:        NewScheduler(policy),
		dst:          dst,
		dstPort:      dstPort,
		burst:        1,
	}
}

// SetBurst sets the port's burst factor: up to n back-to-back queued
// packets are serialized under a single transmission event and delivered
// together (via BatchNode when the destination supports it). This shrinks
// the event heap by the burst factor and lets simulations drive the batch
// data-plane APIs; per-packet serialization time and class accounting are
// unchanged. n < 1 is treated as 1.
func (p *Port) SetBurst(n int) {
	if n < 1 {
		n = 1
	}
	p.burst = n
}

// NewScheduler builds the packet scheduler used by ports (exported for
// tests that exercise scheduling in isolation).
func NewScheduler(policy qos.Policy) *qos.Scheduler[*Packet] {
	return qos.NewScheduler[*Packet](policy, 0)
}

// Drops returns the per-class tail-drop counters.
func (p *Port) Drops() [qos.NumClasses]uint64 { return p.sched.Drops }

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// Shard returns the port's owning (sending-side) shard.
func (p *Port) Shard() *Shard { return p.src }

// QueuedBytes returns the bytes currently queued in one class.
func (p *Port) QueuedBytes(c qos.Class) int { return p.sched.QueuedBytes(c) }

// Send enqueues a packet for transmission; drops follow the scheduler's
// per-class limits. Must be called from the owning shard.
func (p *Port) Send(pkt *Packet) {
	if !p.faults.Admit(p.src.Now()) {
		return
	}
	if !p.sched.Enqueue(pkt, pkt.Class, pkt.WireSize) {
		return
	}
	if !p.busy {
		p.busy = true
		p.transmitNext()
	}
}

// transmitNext serializes the next burst of scheduled packets onto the
// link: up to p.burst packets are drained back-to-back, their serialization
// times summed into one event, and the whole slice delivered together
// after the propagation latency (crossing shards when the destination
// lives elsewhere — the latency is ≥ the lookahead by construction).
func (p *Port) transmitNext() {
	pkt, class, size, ok := p.sched.Dequeue()
	if !ok {
		p.busy = false
		return
	}
	p.Sent[class] += uint64(size)
	total := size
	burst := p.takeBurst()
	burst = append(burst, pkt)
	for len(burst) < p.burst {
		pkt, class, size, ok = p.sched.Dequeue()
		if !ok {
			break
		}
		p.Sent[class] += uint64(size)
		total += size
		burst = append(burst, pkt)
	}
	serNs := int64(float64(total*8) / p.capBitsPerNs)
	if serNs < 1 {
		serNs = 1
	}
	dst, dstPort, lat := p.dst, p.dstPort, p.latencyNs+p.faults.Jitter()
	p.src.After(serNs, func() {
		if p.dstSh == p.src {
			p.src.After(lat, func() {
				deliverBurst(dst, burst, dstPort)
				p.putBurst(burst)
			})
		} else {
			// The delivery executes on the destination shard; the slice is
			// handed over with it and not recycled (the sending shard may
			// already be transmitting again when it is consumed).
			p.src.CrossAfter(p.dstSh, lat, func() {
				deliverBurst(dst, burst, dstPort)
			})
		}
		p.transmitNext()
	})
}

// takeBurst pops a recycled burst slice (or makes one).
func (p *Port) takeBurst() []*Packet {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return make([]*Packet, 0, p.burst)
}

// putBurst returns a delivered burst slice to the pool.
func (p *Port) putBurst(b []*Packet) {
	for i := range b {
		b[i] = nil
	}
	p.free = append(p.free, b[:0])
}

func (p *Port) String() string { return fmt.Sprintf("port(%s)", p.name) }

// Source generates packets at a fixed rate into a destination node (it
// models a traffic generator attached to a link of its own). make creates
// each packet; the source stops at stopNs.
type Source struct {
	Sim     *Sim
	Dst     Node
	DstPort int
	// Shard places the source (and thus its generation events and its
	// direct deliveries into Dst) on a specific shard; nil means the root
	// shard. Dst must live on the same shard: delivery is a direct call.
	Shard *Shard
	// RateKbps and PktBytes define the generation rate.
	RateKbps uint64
	PktBytes int
	StopNs   int64
	Make     func() *Packet
	// Burst > 1 emits that many packets per tick, with the tick interval
	// stretched by the same factor so the offered rate is unchanged; the
	// burst is delivered in one call (via BatchNode when the destination
	// supports it), so one generation event replaces Burst of them.
	Burst int
}

// Start begins generation at startNs. A zero rate generates nothing.
func (src *Source) Start(startNs int64) {
	if src.RateKbps == 0 {
		return
	}
	sh := src.Shard
	if sh == nil {
		sh = src.Sim.Root()
	}
	burst := src.Burst
	if burst < 1 {
		burst = 1
	}
	interval := int64(float64(src.PktBytes*8*burst) / (float64(src.RateKbps) * 1000) * 1e9)
	if interval < 1 {
		interval = 1
	}
	buf := make([]*Packet, burst)
	var tick func()
	next := startNs
	tick = func() {
		if sh.Now() >= src.StopNs {
			return
		}
		for i := range buf {
			buf[i] = src.Make()
		}
		deliverBurst(src.Dst, buf, src.DstPort)
		next += interval
		sh.At(next, tick)
	}
	sh.At(startNs, tick)
}

// Counter is a sink node counting received bytes per class and per meta
// label.
type Counter struct {
	Bytes   [qos.NumClasses]uint64
	ByLabel map[string]uint64
}

// NewCounter builds an empty counter sink.
func NewCounter() *Counter { return &Counter{ByLabel: make(map[string]uint64)} }

// Receive implements Node.
func (c *Counter) Receive(pkt *Packet, _ int) {
	c.Bytes[pkt.Class] += uint64(pkt.WireSize)
	if label, ok := pkt.Meta.(string); ok {
		c.ByLabel[label] += uint64(pkt.WireSize)
	}
}

// ReceiveBatch implements BatchNode.
func (c *Counter) ReceiveBatch(pkts []*Packet, inPort int) {
	for _, pkt := range pkts {
		c.Receive(pkt, inPort)
	}
}

// Reset clears the counters (e.g., between measurement phases).
func (c *Counter) Reset() {
	c.Bytes = [qos.NumClasses]uint64{}
	c.ByLabel = make(map[string]uint64)
}

// GbpsOver converts a byte count accumulated over a duration to Gbps.
func GbpsOver(bytes uint64, durNs int64) float64 {
	return float64(bytes) * 8 / float64(durNs)
}
