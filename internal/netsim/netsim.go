// Package netsim is a discrete-event network simulator: virtual time, nodes
// exchanging packets over links with finite capacity and propagation delay,
// and per-output-port traffic-class scheduling (package qos).
//
// It stands in for the paper's hardware testbed (Spirent traffic generator,
// 40 Gbps links) in the data-plane protection experiment (Table 2) and the
// examples: the quantity those measure is which traffic *class* obtains the
// output link under contention, which the simulated schedulers reproduce
// exactly. Packets carry real header bytes (so the full cryptographic
// data-plane runs) plus a virtual wire size, so multi-Gbps loads simulate in
// milliseconds of CPU time.
package netsim

import (
	"container/heap"
	"fmt"

	"colibri/internal/qos"
)

// Sim is the event loop. Not safe for concurrent use; nodes run inside
// event callbacks.
type Sim struct {
	now int64
	pq  eventQueue
	seq uint64
}

// NewSim creates a simulator at time 0.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time in nanoseconds.
func (s *Sim) Now() int64 { return s.now }

// At schedules fn at absolute time t (≥ now).
func (s *Sim) At(t int64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after a delay.
func (s *Sim) After(d int64, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the queue empties or virtual time exceeds
// until (0 = run to completion). It returns the final time.
func (s *Sim) Run(until int64) int64 {
	for len(s.pq) > 0 {
		ev := s.pq[0]
		if until > 0 && ev.at > until {
			s.now = until
			return s.now
		}
		heap.Pop(&s.pq)
		s.now = ev.at
		ev.fn()
	}
	return s.now
}

type event struct {
	at  int64
	seq uint64 // FIFO tiebreak for simultaneous events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Packet is one simulated packet: Header carries the real Colibri bytes (so
// routers run the actual cryptographic hot path); WireSize is the modelled
// on-wire size in bytes (headers + possibly virtual payload).
type Packet struct {
	Header   []byte
	WireSize int
	Class    qos.Class
	// Meta carries scenario-specific annotations (e.g., flow labels for
	// accounting at sinks).
	Meta any
}

// Node consumes packets delivered by ports.
type Node interface {
	// Receive is called inside the event loop when a packet arrives at the
	// node via the given input port index.
	Receive(pkt *Packet, inPort int)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(pkt *Packet, inPort int)

// Receive implements Node.
func (f NodeFunc) Receive(pkt *Packet, inPort int) { f(pkt, inPort) }

// Port is one output port: a class scheduler draining onto a link of fixed
// capacity and latency towards a destination node.
type Port struct {
	sim          *Sim
	name         string
	capBitsPerNs float64 // link capacity in bits per nanosecond
	latencyNs    int64
	sched        *qos.Scheduler[*Packet]
	busy         bool
	dst          Node
	dstPort      int

	// Sent counts delivered bytes per class (at the sending side).
	Sent [qos.NumClasses]uint64
}

// NewPort creates an output port on sim with the given link capacity (kbps),
// propagation latency, scheduling policy, and destination.
func NewPort(sim *Sim, name string, capacityKbps uint64, latencyNs int64, policy qos.Policy, dst Node, dstPort int) *Port {
	return &Port{
		sim:          sim,
		name:         name,
		capBitsPerNs: float64(capacityKbps) * 1000 / 1e9,
		latencyNs:    latencyNs,
		sched:        NewScheduler(policy),
		dst:          dst,
		dstPort:      dstPort,
	}
}

// NewScheduler builds the packet scheduler used by ports (exported for
// tests that exercise scheduling in isolation).
func NewScheduler(policy qos.Policy) *qos.Scheduler[*Packet] {
	return qos.NewScheduler[*Packet](policy, 0)
}

// Drops returns the per-class tail-drop counters.
func (p *Port) Drops() [qos.NumClasses]uint64 { return p.sched.Drops }

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// QueuedBytes returns the bytes currently queued in one class.
func (p *Port) QueuedBytes(c qos.Class) int { return p.sched.QueuedBytes(c) }

// Send enqueues a packet for transmission; drops follow the scheduler's
// per-class limits.
func (p *Port) Send(pkt *Packet) {
	if !p.sched.Enqueue(pkt, pkt.Class, pkt.WireSize) {
		return
	}
	if !p.busy {
		p.busy = true
		p.transmitNext()
	}
}

// transmitNext serializes the next scheduled packet onto the link.
func (p *Port) transmitNext() {
	pkt, class, size, ok := p.sched.Dequeue()
	if !ok {
		p.busy = false
		return
	}
	serNs := int64(float64(size*8) / p.capBitsPerNs)
	if serNs < 1 {
		serNs = 1
	}
	p.Sent[class] += uint64(size)
	dst, dstPort, lat := p.dst, p.dstPort, p.latencyNs
	p.sim.After(serNs, func() {
		p.sim.After(lat, func() { dst.Receive(pkt, dstPort) })
		p.transmitNext()
	})
}

func (p *Port) String() string { return fmt.Sprintf("port(%s)", p.name) }

// Source generates packets at a fixed rate into a destination node (it
// models a traffic generator attached to a link of its own). make creates
// each packet; the source stops at stopNs.
type Source struct {
	Sim     *Sim
	Dst     Node
	DstPort int
	// RateKbps and PktBytes define the generation rate.
	RateKbps uint64
	PktBytes int
	StopNs   int64
	Make     func() *Packet
}

// Start begins generation at startNs. A zero rate generates nothing.
func (src *Source) Start(startNs int64) {
	if src.RateKbps == 0 {
		return
	}
	interval := int64(float64(src.PktBytes*8) / (float64(src.RateKbps) * 1000) * 1e9)
	if interval < 1 {
		interval = 1
	}
	var tick func()
	next := startNs
	tick = func() {
		if src.Sim.Now() >= src.StopNs {
			return
		}
		pkt := src.Make()
		src.Dst.Receive(pkt, src.DstPort)
		next += interval
		src.Sim.At(next, tick)
	}
	src.Sim.At(startNs, tick)
}

// Counter is a sink node counting received bytes per class and per meta
// label.
type Counter struct {
	Bytes   [qos.NumClasses]uint64
	ByLabel map[string]uint64
}

// NewCounter builds an empty counter sink.
func NewCounter() *Counter { return &Counter{ByLabel: make(map[string]uint64)} }

// Receive implements Node.
func (c *Counter) Receive(pkt *Packet, _ int) {
	c.Bytes[pkt.Class] += uint64(pkt.WireSize)
	if label, ok := pkt.Meta.(string); ok {
		c.ByLabel[label] += uint64(pkt.WireSize)
	}
}

// Reset clears the counters (e.g., between measurement phases).
func (c *Counter) Reset() {
	c.Bytes = [qos.NumClasses]uint64{}
	c.ByLabel = make(map[string]uint64)
}

// GbpsOver converts a byte count accumulated over a duration to Gbps.
func GbpsOver(bytes uint64, durNs int64) float64 {
	return float64(bytes) * 8 / float64(durNs)
}
