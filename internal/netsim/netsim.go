// Package netsim is a discrete-event network simulator: virtual time, nodes
// exchanging packets over links with finite capacity and propagation delay,
// and per-output-port traffic-class scheduling (package qos).
//
// It stands in for the paper's hardware testbed (Spirent traffic generator,
// 40 Gbps links) in the data-plane protection experiment (Table 2) and the
// examples: the quantity those measure is which traffic *class* obtains the
// output link under contention, which the simulated schedulers reproduce
// exactly. Packets carry real header bytes (so the full cryptographic
// data-plane runs) plus a virtual wire size, so multi-Gbps loads simulate in
// milliseconds of CPU time.
package netsim

import (
	"container/heap"
	"fmt"

	"colibri/internal/qos"
)

// Sim is the event loop. Not safe for concurrent use; nodes run inside
// event callbacks.
type Sim struct {
	now int64
	pq  eventQueue
	seq uint64
}

// NewSim creates a simulator at time 0.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time in nanoseconds.
func (s *Sim) Now() int64 { return s.now }

// At schedules fn at absolute time t (≥ now).
func (s *Sim) At(t int64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after a delay.
func (s *Sim) After(d int64, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the queue empties or virtual time exceeds
// until (0 = run to completion). It returns the final time.
func (s *Sim) Run(until int64) int64 {
	for len(s.pq) > 0 {
		ev := s.pq[0]
		if until > 0 && ev.at > until {
			s.now = until
			return s.now
		}
		heap.Pop(&s.pq)
		s.now = ev.at
		ev.fn()
	}
	return s.now
}

type event struct {
	at  int64
	seq uint64 // FIFO tiebreak for simultaneous events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Packet is one simulated packet: Header carries the real Colibri bytes (so
// routers run the actual cryptographic hot path); WireSize is the modelled
// on-wire size in bytes (headers + possibly virtual payload).
type Packet struct {
	Header   []byte
	WireSize int
	Class    qos.Class
	// Meta carries scenario-specific annotations (e.g., flow labels for
	// accounting at sinks).
	Meta any
}

// Node consumes packets delivered by ports.
type Node interface {
	// Receive is called inside the event loop when a packet arrives at the
	// node via the given input port index.
	Receive(pkt *Packet, inPort int)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(pkt *Packet, inPort int)

// Receive implements Node.
func (f NodeFunc) Receive(pkt *Packet, inPort int) { f(pkt, inPort) }

// BatchNode is implemented by nodes that can consume a whole burst at
// once (e.g. a router node driving Worker.ProcessBatch). Ports and
// sources with a burst factor > 1 deliver through ReceiveBatch when the
// destination implements it, falling back to per-packet Receive calls
// otherwise. The pkts slice is owned by the caller and must not be
// retained past the call.
type BatchNode interface {
	Node
	ReceiveBatch(pkts []*Packet, inPort int)
}

// deliverBurst hands a burst to dst, batched when supported.
func deliverBurst(dst Node, pkts []*Packet, inPort int) {
	if bn, ok := dst.(BatchNode); ok && len(pkts) > 1 {
		bn.ReceiveBatch(pkts, inPort)
		return
	}
	for _, pkt := range pkts {
		dst.Receive(pkt, inPort)
	}
}

// Port is one output port: a class scheduler draining onto a link of fixed
// capacity and latency towards a destination node.
type Port struct {
	sim          *Sim
	name         string
	capBitsPerNs float64 // link capacity in bits per nanosecond
	latencyNs    int64
	sched        *qos.Scheduler[*Packet]
	busy         bool
	dst          Node
	dstPort      int
	// burst is the maximum number of queued packets coalesced into one
	// transmission event (1 = per-packet events, the default).
	burst int
	// free recycles burst slices between events, keeping burst delivery
	// allocation-free in steady state.
	free [][]*Packet
	// faults optionally injects loss, jitter, and down windows (see
	// faults.go); nil means a perfect link.
	faults *FaultPlan

	// Sent counts delivered bytes per class (at the sending side).
	Sent [qos.NumClasses]uint64
}

// NewPort creates an output port on sim with the given link capacity (kbps),
// propagation latency, scheduling policy, and destination.
func NewPort(sim *Sim, name string, capacityKbps uint64, latencyNs int64, policy qos.Policy, dst Node, dstPort int) *Port {
	return &Port{
		sim:          sim,
		name:         name,
		capBitsPerNs: float64(capacityKbps) * 1000 / 1e9,
		latencyNs:    latencyNs,
		sched:        NewScheduler(policy),
		dst:          dst,
		dstPort:      dstPort,
		burst:        1,
	}
}

// SetBurst sets the port's burst factor: up to n back-to-back queued
// packets are serialized under a single transmission event and delivered
// together (via BatchNode when the destination supports it). This shrinks
// the event heap by the burst factor and lets simulations drive the batch
// data-plane APIs; per-packet serialization time and class accounting are
// unchanged. n < 1 is treated as 1.
func (p *Port) SetBurst(n int) {
	if n < 1 {
		n = 1
	}
	p.burst = n
}

// NewScheduler builds the packet scheduler used by ports (exported for
// tests that exercise scheduling in isolation).
func NewScheduler(policy qos.Policy) *qos.Scheduler[*Packet] {
	return qos.NewScheduler[*Packet](policy, 0)
}

// Drops returns the per-class tail-drop counters.
func (p *Port) Drops() [qos.NumClasses]uint64 { return p.sched.Drops }

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// QueuedBytes returns the bytes currently queued in one class.
func (p *Port) QueuedBytes(c qos.Class) int { return p.sched.QueuedBytes(c) }

// Send enqueues a packet for transmission; drops follow the scheduler's
// per-class limits.
func (p *Port) Send(pkt *Packet) {
	if !p.faults.Admit(p.sim.Now()) {
		return
	}
	if !p.sched.Enqueue(pkt, pkt.Class, pkt.WireSize) {
		return
	}
	if !p.busy {
		p.busy = true
		p.transmitNext()
	}
}

// transmitNext serializes the next burst of scheduled packets onto the
// link: up to p.burst packets are drained back-to-back, their serialization
// times summed into one event, and the whole slice delivered together
// after the propagation latency.
func (p *Port) transmitNext() {
	pkt, class, size, ok := p.sched.Dequeue()
	if !ok {
		p.busy = false
		return
	}
	p.Sent[class] += uint64(size)
	total := size
	burst := p.takeBurst()
	burst = append(burst, pkt)
	for len(burst) < p.burst {
		pkt, class, size, ok = p.sched.Dequeue()
		if !ok {
			break
		}
		p.Sent[class] += uint64(size)
		total += size
		burst = append(burst, pkt)
	}
	serNs := int64(float64(total*8) / p.capBitsPerNs)
	if serNs < 1 {
		serNs = 1
	}
	dst, dstPort, lat := p.dst, p.dstPort, p.latencyNs+p.faults.Jitter()
	p.sim.After(serNs, func() {
		p.sim.After(lat, func() {
			deliverBurst(dst, burst, dstPort)
			p.putBurst(burst)
		})
		p.transmitNext()
	})
}

// takeBurst pops a recycled burst slice (or makes one).
func (p *Port) takeBurst() []*Packet {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return make([]*Packet, 0, p.burst)
}

// putBurst returns a delivered burst slice to the pool.
func (p *Port) putBurst(b []*Packet) {
	for i := range b {
		b[i] = nil
	}
	p.free = append(p.free, b[:0])
}

func (p *Port) String() string { return fmt.Sprintf("port(%s)", p.name) }

// Source generates packets at a fixed rate into a destination node (it
// models a traffic generator attached to a link of its own). make creates
// each packet; the source stops at stopNs.
type Source struct {
	Sim     *Sim
	Dst     Node
	DstPort int
	// RateKbps and PktBytes define the generation rate.
	RateKbps uint64
	PktBytes int
	StopNs   int64
	Make     func() *Packet
	// Burst > 1 emits that many packets per tick, with the tick interval
	// stretched by the same factor so the offered rate is unchanged; the
	// burst is delivered in one call (via BatchNode when the destination
	// supports it), so one generation event replaces Burst of them.
	Burst int
}

// Start begins generation at startNs. A zero rate generates nothing.
func (src *Source) Start(startNs int64) {
	if src.RateKbps == 0 {
		return
	}
	burst := src.Burst
	if burst < 1 {
		burst = 1
	}
	interval := int64(float64(src.PktBytes*8*burst) / (float64(src.RateKbps) * 1000) * 1e9)
	if interval < 1 {
		interval = 1
	}
	buf := make([]*Packet, burst)
	var tick func()
	next := startNs
	tick = func() {
		if src.Sim.Now() >= src.StopNs {
			return
		}
		for i := range buf {
			buf[i] = src.Make()
		}
		deliverBurst(src.Dst, buf, src.DstPort)
		next += interval
		src.Sim.At(next, tick)
	}
	src.Sim.At(startNs, tick)
}

// Counter is a sink node counting received bytes per class and per meta
// label.
type Counter struct {
	Bytes   [qos.NumClasses]uint64
	ByLabel map[string]uint64
}

// NewCounter builds an empty counter sink.
func NewCounter() *Counter { return &Counter{ByLabel: make(map[string]uint64)} }

// Receive implements Node.
func (c *Counter) Receive(pkt *Packet, _ int) {
	c.Bytes[pkt.Class] += uint64(pkt.WireSize)
	if label, ok := pkt.Meta.(string); ok {
		c.ByLabel[label] += uint64(pkt.WireSize)
	}
}

// ReceiveBatch implements BatchNode.
func (c *Counter) ReceiveBatch(pkts []*Packet, inPort int) {
	for _, pkt := range pkts {
		c.Receive(pkt, inPort)
	}
}

// Reset clears the counters (e.g., between measurement phases).
func (c *Counter) Reset() {
	c.Bytes = [qos.NumClasses]uint64{}
	c.ByLabel = make(map[string]uint64)
}

// GbpsOver converts a byte count accumulated over a duration to Gbps.
func GbpsOver(bytes uint64, durNs int64) float64 {
	return float64(bytes) * 8 / float64(durNs)
}
