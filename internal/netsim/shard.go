// shard.go — the sharded event core shared by both execution engines.
//
// Every event is addressed to one shard (a logical process in PDES terms:
// typically one simulated AS/node and all state it owns) and carries the
// deterministic ordering key
//
//	(at, dst shard, src shard, channel sequence)
//
// where the channel sequence is a per-(src,dst) counter owned by the
// *scheduling* shard. Because a shard's events always execute in key order —
// globally in the sequential engine, shard-locally in the parallel one — and
// only the owning shard ever increments its channel counters, key assignment
// is identical under both engines. That is the whole determinism argument:
// identical keys ⇒ identical execution order per shard ⇒ identical state and
// identical child keys, by induction over windows (DESIGN.md §6).
//
// Single-shard simulations (everything defaults to the root shard) collapse
// to the classic (time, FIFO) tie-break of the original sequential engine:
// all events share the root self-channel, whose sequence is exactly the old
// global counter.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
)

// Sim is the discrete-event simulator. Build topologies single-threaded,
// then execute with Run (sequential) or RunParallel (safe-window parallel);
// both produce bit-identical event traces and final state. Nodes run inside
// event callbacks on their owning shard.
type Sim struct {
	now    int64
	pq     eventQueue // sequential engine: one global heap over all shards
	shards []*Shard
	cur    *Shard // shard whose event is executing (sequential engine); root otherwise

	// lookahead is the conservative synchronization bound: the minimum
	// cross-shard scheduling delay (classic PDES lookahead), maintained as
	// the minimum latency over cross-shard ports and SetLookahead calls.
	// math.MaxInt64 means "no cross-shard edges declared".
	lookahead int64

	running  bool // inside Run or RunParallel
	par      bool // parallel redistribution active (events live in shard heaps)
	inWindow bool // workers are executing a safe window right now

	traceOn bool
	tel     *parTelemetry
}

// NewSim creates a simulator at time 0 with a single root shard.
func NewSim() *Sim {
	s := &Sim{lookahead: math.MaxInt64}
	root := &Shard{sim: s, id: 0}
	s.shards = []*Shard{root}
	s.cur = root
	return s
}

// Root returns the default shard, owner of everything not explicitly placed.
func (s *Sim) Root() *Shard { return s.shards[0] }

// NewShard adds a shard (one unit of parallel state — typically one
// simulated AS). Shards must be created during topology construction,
// before Run/RunParallel.
func (s *Sim) NewShard() *Shard {
	if s.running {
		panic("netsim: NewShard during Run")
	}
	sh := &Shard{sim: s, id: int32(len(s.shards))}
	s.shards = append(s.shards, sh)
	return sh
}

// NumShards returns the shard count (≥ 1).
func (s *Sim) NumShards() int { return len(s.shards) }

// SetLookahead declares a lower bound on cross-shard scheduling delays (ns),
// tightening the safe window if smaller than the port-derived minimum.
// Cross-shard ports declare their latency automatically; call this only when
// using Shard.Cross directly.
func (s *Sim) SetLookahead(ns int64) {
	if ns < 1 {
		panic("netsim: lookahead must be >= 1ns")
	}
	s.noteLookahead(ns)
}

func (s *Sim) noteLookahead(ns int64) {
	if s.running {
		panic("netsim: declare cross-shard links before Run")
	}
	if ns < s.lookahead {
		s.lookahead = ns
	}
}

// Now returns the current virtual time in nanoseconds. During RunParallel of
// a multi-shard simulation, event callbacks must use their Shard's Now
// instead (the global clock only advances window-by-window there); calling
// Sim.Now from inside a safe window panics to make that misuse loud.
func (s *Sim) Now() int64 {
	if s.inWindow && len(s.shards) > 1 {
		panic("netsim: Sim.Now inside a parallel window — use Shard.Now")
	}
	return s.now
}

// At schedules fn at absolute time t (≥ now) on the currently executing
// shard (the root shard outside event callbacks). Multi-shard parallel
// callbacks must use Shard.At.
func (s *Sim) At(t int64, fn func()) {
	if s.inWindow && len(s.shards) > 1 {
		panic("netsim: Sim.At inside a parallel window — use Shard.At")
	}
	s.cur.At(t, fn)
}

// After schedules fn after a delay on the currently executing shard.
func (s *Sim) After(d int64, fn func()) { s.At(s.now+d, fn) }

// Executed returns the total number of events executed so far.
func (s *Sim) Executed() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.executed
	}
	return n
}

// Shard is one unit of parallel simulation state. All state a shard's event
// callbacks touch (nodes, output ports, fault plans) must belong to that
// shard; cross-shard interaction flows exclusively through Cross-scheduled
// events (which ports issue for packet delivery). Methods are safe to call
// from topology-construction code and from the shard's own event callbacks;
// they are NOT safe to call from other shards' callbacks during RunParallel.
type Shard struct {
	sim *Sim
	id  int32
	now int64

	winEnd         int64      // parallel engine: exclusive bound of the current window
	pq             eventQueue // parallel engine: shard-local heap
	outbox         []*event   // parallel engine: cross-shard events awaiting merge
	ch             []uint64   // next channel sequence, indexed by destination shard
	executed       uint64
	windowExecuted uint64 // events executed in the current window (telemetry)
	trace          []TraceEntry
}

// ID returns the shard's index (root = 0).
func (sh *Shard) ID() int { return int(sh.id) }

// Sim returns the owning simulator.
func (sh *Shard) Sim() *Sim { return sh.sim }

// Now returns the shard's current virtual time: the timestamp of the event
// being executed, never behind the global clock.
func (sh *Shard) Now() int64 {
	if sh.now > sh.sim.now {
		return sh.now
	}
	return sh.sim.now
}

// At schedules fn on this shard at absolute time t (clamped to Now).
func (sh *Shard) At(t int64, fn func()) {
	if base := sh.Now(); t < base {
		t = base
	}
	sh.schedule(&event{at: t, dst: sh.id, src: sh.id, seq: sh.nextSeq(sh.id), fn: fn})
}

// After schedules fn on this shard after a delay.
func (sh *Shard) After(d int64, fn func()) { sh.At(sh.Now()+d, fn) }

// Cross schedules fn on shard dst at absolute time t. From inside event
// callbacks, t must respect the simulator's lookahead (t ≥ now + lookahead):
// that bound is what lets the parallel engine execute shards independently
// within a safe window, so violating it panics — identically under both
// engines, keeping even failure behaviour engine-independent.
func (sh *Shard) Cross(dst *Shard, t int64, fn func()) {
	if dst.sim != sh.sim {
		panic("netsim: Cross between different simulators")
	}
	if dst == sh {
		sh.At(t, fn)
		return
	}
	if base := sh.Now(); t < base {
		t = base
	}
	if sh.sim.running {
		la := sh.sim.lookahead
		if la == math.MaxInt64 {
			panic("netsim: cross-shard scheduling without a declared lookahead (create a cross-shard port or call SetLookahead)")
		}
		if t < sh.now+la {
			panic(fmt.Sprintf("netsim: cross-shard event at t=%d violates lookahead %d (shard %d now %d)",
				t, la, sh.id, sh.now))
		}
	}
	ev := &event{at: t, dst: dst.id, src: sh.id, seq: sh.nextSeq(dst.id), fn: fn}
	if sh.sim.par {
		sh.outbox = append(sh.outbox, ev)
	} else {
		heap.Push(&sh.sim.pq, ev)
	}
}

// CrossAfter schedules fn on shard dst after delay d (≥ lookahead).
func (sh *Shard) CrossAfter(dst *Shard, d int64, fn func()) { sh.Cross(dst, sh.Now()+d, fn) }

// schedule inserts a self-addressed event into whichever heap the active
// engine reads: the shard-local one during RunParallel (only the owning
// worker touches it), the global one otherwise.
func (sh *Shard) schedule(ev *event) {
	if sh.sim.par {
		heap.Push(&sh.pq, ev)
	} else {
		heap.Push(&sh.sim.pq, ev)
	}
}

// nextSeq increments and returns the channel sequence toward dst. Channel
// counters are owned by the scheduling shard, so no synchronization is
// needed and assignment order is the shard's deterministic execution order.
func (sh *Shard) nextSeq(dst int32) uint64 {
	for int(dst) >= len(sh.ch) {
		sh.ch = append(sh.ch, 0)
	}
	sh.ch[dst]++
	return sh.ch[dst]
}

// event is one scheduled callback with its deterministic ordering key.
type event struct {
	at  int64
	dst int32  // shard the callback executes on
	src int32  // shard that scheduled it
	seq uint64 // per-(src,dst) channel sequence (FIFO per channel)
	fn  func()
}

// less is the total event order: time, then destination shard, then source
// shard, then channel FIFO. The non-time components only break exact
// timestamp ties; they are engine-independent by construction.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.dst != o.dst {
		return e.dst < o.dst
	}
	if e.src != o.src {
		return e.src < o.src
	}
	return e.seq < o.seq
}

type eventQueue []*event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].less(q[j]) }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)         { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
