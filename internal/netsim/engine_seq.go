// engine_seq.go — the sequential execution engine: one global heap, events
// executed strictly in key order (time, dst shard, src shard, channel seq).
// This is the reference semantics; the parallel engine (engine_par.go) is
// proven against it event-trace-for-event-trace by RunBoth and the
// equivalence test suite.
package netsim

import "container/heap"

// Run executes events sequentially until the queue empties or virtual time
// exceeds until (0 = run to completion). It returns the final time.
func (s *Sim) Run(until int64) int64 {
	s.running = true
	defer func() {
		s.running = false
		s.cur = s.shards[0]
	}()
	for len(s.pq) > 0 {
		ev := s.pq[0]
		if until > 0 && ev.at > until {
			s.now = until
			return s.now
		}
		heap.Pop(&s.pq)
		sh := s.shards[ev.dst]
		s.now = ev.at
		sh.now = ev.at
		s.cur = sh
		sh.executed++
		if s.traceOn {
			sh.trace = append(sh.trace, TraceEntry{At: ev.at, Dst: ev.dst, Src: ev.src, Seq: ev.seq})
		}
		ev.fn()
	}
	return s.now
}
