package netsim

import (
	"fmt"

	"colibri/internal/qos"
	"colibri/internal/telemetry"
)

// Probe samples watched ports on virtual-time ticks into a telemetry
// registry: delivered bytes become per-class counters, instantaneous queue
// depths become per-class histograms (so queue-buildup percentiles come for
// free), and drops become counters. Sampling runs inside the event loop on
// one shard, so it may only watch ports owned by that shard (port state is
// only coherent from its owning shard during RunParallel); NewProbe binds
// the root shard, NewShardProbe any other.
type Probe struct {
	sh       *Shard
	reg      *telemetry.Registry
	interval int64
	ports    []*probePort
}

type probePort struct {
	port      *Port
	sent      [qos.NumClasses]*telemetry.Counter
	drops     [qos.NumClasses]*telemetry.Counter
	depth     [qos.NumClasses]*telemetry.Histogram
	lastSent  [qos.NumClasses]uint64
	lastDrops [qos.NumClasses]uint64
}

// NewProbe builds a probe on the root shard sampling every intervalNs of
// virtual time.
func NewProbe(sim *Sim, reg *telemetry.Registry, intervalNs int64) *Probe {
	return NewShardProbe(sim.Root(), reg, intervalNs)
}

// NewShardProbe builds a probe whose sampling ticks run on sh; it may only
// watch ports owned by sh.
func NewShardProbe(sh *Shard, reg *telemetry.Registry, intervalNs int64) *Probe {
	if intervalNs <= 0 {
		intervalNs = 1e6 // 1 ms of virtual time
	}
	return &Probe{sh: sh, reg: reg, interval: intervalNs}
}

// Watch adds ports to the sampling set. Instruments are named
// netsim.<port>.{sent_bytes,drop_pkts,queued_bytes}.<class>.
func (p *Probe) Watch(ports ...*Port) {
	for _, port := range ports {
		if port.src != p.sh {
			panic("netsim: probe may only watch ports on its own shard")
		}
		pp := &probePort{port: port}
		prefix := fmt.Sprintf("netsim.%s.", port.Name())
		// Dynamic name parts are bounded: ports come from the finite
		// topology, classes from the fixed qos enum — cardinality cannot
		// run away, and the shape is documented on Watch.
		for c := qos.Class(0); c < qos.NumClasses; c++ {
			pp.sent[c] = p.reg.Counter(prefix + "sent_bytes." + c.String())      //colibri:allow(telemetry)
			pp.drops[c] = p.reg.Counter(prefix + "drop_pkts." + c.String())      //colibri:allow(telemetry)
			pp.depth[c] = p.reg.Histogram(prefix + "queued_bytes." + c.String()) //colibri:allow(telemetry)
		}
		p.ports = append(p.ports, pp)
	}
}

// Start schedules sampling ticks from the current virtual time until stopNs
// (0 = keep sampling as long as other events keep the simulation alive; the
// tick itself always stops at stopNs to avoid running the loop forever).
func (p *Probe) Start(stopNs int64) {
	var tick func()
	tick = func() {
		p.sample()
		if stopNs > 0 && p.sh.Now()+p.interval > stopNs {
			return
		}
		p.sh.After(p.interval, tick)
	}
	p.sh.After(p.interval, tick)
}

// sample records the delta of delivered/dropped bytes and the instantaneous
// queue depths since the previous tick.
func (p *Probe) sample() {
	for _, pp := range p.ports {
		drops := pp.port.Drops()
		for c := qos.Class(0); c < qos.NumClasses; c++ {
			if d := pp.port.Sent[c] - pp.lastSent[c]; d > 0 {
				pp.sent[c].Add(d)
				pp.lastSent[c] = pp.port.Sent[c]
			}
			if d := drops[c] - pp.lastDrops[c]; d > 0 {
				pp.drops[c].Add(d)
				pp.lastDrops[c] = drops[c]
			}
			pp.depth[c].Observe(int64(pp.port.QueuedBytes(c)))
		}
	}
}
