// equiv.go — the differential harness that makes determinism-equivalence a
// first-class package feature: record full event traces under both engines
// and diff them entry for entry, not just compare final state. The parallel
// engine's correctness claim *is* "bit-identical to sequential", so the
// harness is the spec.
package netsim

import (
	"fmt"
	"sort"
)

// TraceEntry is the deterministic identity of one executed event: its
// timestamp and full ordering key. Callbacks are opaque, but every side
// effect a callback has on the simulation schedule shows up as child keys,
// so two runs with equal traces executed equal event sequences; scenario
// state digests (RunBoth) close the loop on user-visible state.
type TraceEntry struct {
	At       int64
	Dst, Src int32
	Seq      uint64
}

func (e TraceEntry) String() string {
	return fmt.Sprintf("t=%d dst=%d src=%d seq=%d", e.At, e.Dst, e.Src, e.Seq)
}

func (e TraceEntry) less(o TraceEntry) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	if e.Dst != o.Dst {
		return e.Dst < o.Dst
	}
	if e.Src != o.Src {
		return e.Src < o.Src
	}
	return e.Seq < o.Seq
}

// EnableTrace turns on event-trace recording (off by default; recording
// costs one append per event).
func (s *Sim) EnableTrace() { s.traceOn = true }

// Trace returns the canonical execution trace: every executed event's key,
// in the global deterministic order. Workers record per shard; the merge
// sorts by key, which for the sequential engine is exactly execution order
// and for the parallel engine is the order the sequential engine would have
// used — equality of traces is therefore the bit-identity criterion.
func (s *Sim) Trace() []TraceEntry {
	var out []TraceEntry
	for _, sh := range s.shards {
		out = append(out, sh.trace...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Scenario builds one topology instance into a fresh Sim and returns a
// digest function summarizing the user-visible final state (delivered
// bytes, drop counters, ...), evaluated after the run. Builders must not
// share mutable state across invocations: RunBoth calls the scenario once
// per engine.
type Scenario func(s *Sim) (digest func() string)

// EquivResult holds one sequential-vs-parallel differential run.
type EquivResult struct {
	SeqEnd, ParEnd       int64
	SeqEvents, ParEvents uint64
	SeqTrace, ParTrace   []TraceEntry
	SeqDigest, ParDigest string
}

// Err returns nil when the two runs were bit-identical, or an error naming
// the first divergence (end time, trace entry, or state digest).
func (r *EquivResult) Err() error {
	if r.SeqEnd != r.ParEnd {
		return fmt.Errorf("final time diverges: seq=%d par=%d", r.SeqEnd, r.ParEnd)
	}
	n := len(r.SeqTrace)
	if len(r.ParTrace) < n {
		n = len(r.ParTrace)
	}
	for i := 0; i < n; i++ {
		if r.SeqTrace[i] != r.ParTrace[i] {
			return fmt.Errorf("trace diverges at event %d: seq(%s) par(%s)", i, r.SeqTrace[i], r.ParTrace[i])
		}
	}
	if len(r.SeqTrace) != len(r.ParTrace) {
		return fmt.Errorf("trace length diverges after %d common events: seq=%d par=%d",
			n, len(r.SeqTrace), len(r.ParTrace))
	}
	if r.SeqDigest != r.ParDigest {
		return fmt.Errorf("state digest diverges:\nseq: %s\npar: %s", r.SeqDigest, r.ParDigest)
	}
	return nil
}

// RunBoth executes the scenario under both engines — sequential and
// safe-window parallel with the given worker count — diffing full event
// traces and state digests. until bounds virtual time (0 = completion).
// The returned error is EquivResult.Err().
func RunBoth(until int64, workers int, scenario Scenario) (*EquivResult, error) {
	r := &EquivResult{}

	seq := NewSim()
	seq.EnableTrace()
	seqDigest := scenario(seq)
	r.SeqEnd = seq.Run(until)
	r.SeqEvents = seq.Executed()
	r.SeqTrace = seq.Trace()
	if seqDigest != nil {
		r.SeqDigest = seqDigest()
	}

	par := NewSim()
	par.EnableTrace()
	parDigest := scenario(par)
	r.ParEnd = par.RunParallel(until, workers)
	r.ParEvents = par.Executed()
	r.ParTrace = par.Trace()
	if parDigest != nil {
		r.ParDigest = parDigest()
	}

	return r, r.Err()
}
