// Package colibri is a complete implementation of Colibri, the cooperative
// lightweight inter-domain bandwidth-reservation infrastructure of
// Giuliari et al. (CoNEXT 2021).
//
// Colibri provides worst-case minimum bandwidth guarantees between any pair
// of ASes on a path-aware Internet, resilient to DDoS attacks. It layers
// two kinds of reservations:
//
//   - Segment reservations (SegRs): intermediate-term (~5 min) AS-to-AS
//     reservations along the up-, core-, and down-segments of the underlying
//     path-aware architecture, admitted under bounded tube fairness.
//   - End-to-end reservations (EERs): short-term (16 s) host-to-host
//     reservations stacked cheaply onto SegRs.
//
// The data plane authenticates every packet with per-hop DRKey-derived
// MACs, keeps zero per-flow state at border routers, and polices overuse
// with deterministic monitoring at the source AS and probabilistic
// detection elsewhere.
//
// # Quick start
//
//	topo := colibri.TwoISDTopology()
//	net, err := colibri.NewNetwork(topo, colibri.Options{})
//	if err != nil { ... }
//	if err := net.AutoSetupSegRs(1_000_000); err != nil { ... } // kbps
//	src, _ := net.AddHost(colibri.MustIA(1, 11), 1)
//	dst, _ := net.AddHost(colibri.MustIA(2, 11), 2)
//	sess, err := src.RequestEER(dst, 8_000) // 8 Mbps
//	if err != nil { ... }
//	err = sess.Send([]byte("over a bandwidth guarantee"))
//
// The package is a facade over the building blocks in internal/: topology
// and path-segment discovery, the DRKey infrastructure, the Colibri service
// (control plane), gateway and border router (data plane), monitoring and
// policing, and a discrete-event simulator used by the evaluation harness.
package colibri

import (
	"colibri/internal/core"
	"colibri/internal/cserv"
	"colibri/internal/segment"
	"colibri/internal/topology"
)

// Core network-model types.
type (
	// IA is a combined ISD-AS identifier.
	IA = topology.IA
	// ISD identifies an isolation domain.
	ISD = topology.ISD
	// ASID is an AS number (48 bits).
	ASID = topology.ASID
	// IfID identifies an interface within one AS.
	IfID = topology.IfID
	// Topology is the inter-domain graph Colibri runs on.
	Topology = topology.Topology
	// LinkSpec configures link capacity and latency.
	LinkSpec = topology.LinkSpec
	// GenSpec parameterizes the Internet-like topology generator.
	GenSpec = topology.GenSpec
	// Segment is a discovered up-, down-, or core-path segment.
	Segment = segment.Segment
	// Path is an end-to-end AS-level path.
	Path = segment.Path
)

// Deployment and host-facing types.
type (
	// Network is a fully wired multi-AS Colibri deployment: one Colibri
	// service, gateway, border router, and key server per AS.
	Network = core.Network
	// Options configures NewNetwork.
	Options = core.Options
	// Node is one AS's Colibri deployment.
	Node = core.Node
	// Host is an end host attached to an AS.
	Host = core.Host
	// Session is an established end-to-end reservation.
	Session = core.Session
	// Clock is the network-wide virtual clock.
	Clock = core.Clock
	// Policy is a source AS's intra-AS admission policy.
	Policy = cserv.Policy
	// HostCapPolicy limits each host to a bandwidth cap.
	HostCapPolicy = cserv.HostCapPolicy
)

// LinkType classifies inter-domain links.
type LinkType = topology.LinkType

// Link relationship constants.
const (
	// LinkCore connects two core ASes.
	LinkCore = topology.LinkCore
	// LinkParent is a provider-to-customer link (seen from the provider).
	LinkParent = topology.LinkParent
	// LinkChild is the customer side of a provider-customer link.
	LinkChild = topology.LinkChild
	// LinkPeer is a lateral peering link.
	LinkPeer = topology.LinkPeer
)

// MustIA builds an IA from an ISD and AS number; it panics if the AS number
// exceeds 48 bits.
func MustIA(isd ISD, as ASID) IA { return topology.MustIA(isd, as) }

// NewTopology returns an empty topology for manual construction.
func NewTopology() *Topology { return topology.New() }

// TwoISDTopology returns the paper's Fig. 1 topology: source AS 1-11
// multihomed under transits 1-2 and 1-3 below core 1-1 (ISD 1), and
// destination AS 2-11 below core 2-1 (ISD 2).
func TwoISDTopology() *Topology { return topology.TwoISD(topology.LinkSpec{}) }

// GenerateTopology builds an Internet-like hierarchical topology.
func GenerateTopology(spec GenSpec) *Topology { return topology.Generate(spec) }

// LineTopology builds a chain of n ASes (the first coreCount of them core),
// useful for path-length-controlled experiments.
func LineTopology(n, coreCount int) *Topology {
	return topology.Line(n, coreCount, topology.LinkSpec{})
}

// NewNetwork builds and wires Colibri nodes for every AS of the topology.
func NewNetwork(topo *Topology, opts Options) (*Network, error) {
	return core.NewNetwork(topo, opts)
}

// NewClock starts a virtual clock at the given Unix time.
func NewClock(unixSec uint32) *Clock { return core.NewClock(unixSec) }

// Bandwidth helpers (all APIs take kbps).
const (
	// Kbps is one kilobit per second.
	Kbps uint64 = 1
	// Mbps is one megabit per second in kbps.
	Mbps uint64 = 1000
	// Gbps is one gigabit per second in kbps.
	Gbps uint64 = 1000_000
)
