package colibri_test

import (
	"testing"

	"colibri"
)

// TestQuickstart exercises the public API exactly as the README does.
func TestQuickstart(t *testing.T) {
	topo := colibri.TwoISDTopology()
	net, err := colibri.NewNetwork(topo, colibri.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AutoSetupSegRs(1 * colibri.Gbps); err != nil {
		t.Fatal(err)
	}
	src, err := net.AddHost(colibri.MustIA(1, 11), 1)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := net.AddHost(colibri.MustIA(2, 11), 2)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := src.RequestEER(dst, 8*colibri.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send([]byte("over a bandwidth guarantee")); err != nil {
		t.Fatal(err)
	}
	if dst.Received != 1 {
		t.Fatalf("received %d", dst.Received)
	}
}

func TestManualTopologyConstruction(t *testing.T) {
	topo := colibri.NewTopology()
	a := colibri.MustIA(1, 1)
	b := colibri.MustIA(1, 2)
	topo.AddAS(a, true)
	topo.AddAS(b, false)
	if _, err := topo.Connect(a, 1, b, 1, colibri.LinkParent, colibri.LinkSpec{CapacityKbps: 10 * colibri.Gbps}); err != nil {
		t.Fatal(err)
	}
	net, err := colibri.NewNetwork(topo, colibri.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AutoSetupSegRs(100 * colibri.Mbps); err != nil {
		t.Fatal(err)
	}
	h1, err := net.AddHost(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := net.AddHost(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := h2.RequestEER(h1, 1*colibri.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send([]byte("up the tree")); err != nil {
		t.Fatal(err)
	}
	if h1.Received != 1 {
		t.Fatalf("received %d", h1.Received)
	}
}

func TestLineTopologyAndClock(t *testing.T) {
	topo := colibri.LineTopology(4, 1)
	clock := colibri.NewClock(1_800_000_000)
	net, err := colibri.NewNetwork(topo, colibri.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if net.Clock.NowSec() != 1_800_000_000 {
		t.Errorf("clock = %d", net.Clock.NowSec())
	}
	if err := net.AutoSetupSegRs(10 * colibri.Mbps); err != nil {
		t.Fatal(err)
	}
	a, err := net.AddHost(colibri.MustIA(1, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddHost(colibri.MustIA(1, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := b.RequestEER(a, 1*colibri.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if sess.PathLen() != 4 {
		t.Errorf("path length = %d", sess.PathLen())
	}
	if err := sess.Send([]byte("down the line")); err != nil {
		t.Fatal(err)
	}
	if a.Received != 1 {
		t.Errorf("received %d", a.Received)
	}
}

func TestGeneratedTopologyPublicAPI(t *testing.T) {
	topo := colibri.GenerateTopology(colibri.GenSpec{
		ISDs: 2, CoresPerISD: 2, ProvidersPerISD: 1, LeavesPerISD: 2,
		Seed: 4,
	})
	net, err := colibri.NewNetwork(topo, colibri.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AutoSetupSegRs(100 * colibri.Mbps); err != nil {
		t.Fatal(err)
	}
	src, err := net.AddHost(colibri.MustIA(1, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := net.AddHost(colibri.MustIA(2, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := src.RequestEER(dst, 2*colibri.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		net.Clock.Advance(1e6)
		if err := sess.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if dst.Received != 3 {
		t.Fatalf("received %d", dst.Received)
	}
}
