// Command colibri-topo generates and inspects the topologies the library
// runs on: it prints the AS-level graph, the discovered path segments, and
// the end-to-end paths between two ASes.
//
// Usage:
//
//	colibri-topo [-isds 2] [-cores 2] [-providers 2] [-leaves 3] [-seed 1]
//	             [-src 1-5 -dst 2-5] [-two-isd]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"colibri/internal/segment"
	"colibri/internal/topology"
)

func parseIA(s string) (topology.IA, error) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return 0, fmt.Errorf("IA must look like 1-11, got %q", s)
	}
	isd, err := strconv.ParseUint(parts[0], 10, 16)
	if err != nil {
		return 0, err
	}
	as, err := strconv.ParseUint(parts[1], 10, 48)
	if err != nil {
		return 0, err
	}
	return topology.MustIA(topology.ISD(isd), topology.ASID(as)), nil
}

func main() {
	isds := flag.Int("isds", 2, "number of ISDs")
	cores := flag.Int("cores", 2, "core ASes per ISD")
	providers := flag.Int("providers", 2, "transit ASes per ISD")
	leaves := flag.Int("leaves", 3, "leaf ASes per ISD")
	seed := flag.Int64("seed", 1, "generator seed")
	twoISD := flag.Bool("two-isd", false, "use the paper's Fig. 1 topology instead of the generator")
	src := flag.String("src", "", "print end-to-end paths from this IA (e.g. 1-5)")
	dst := flag.String("dst", "", "…to this IA")
	flag.Parse()

	var topo *topology.Topology
	if *twoISD {
		topo = topology.TwoISD(topology.LinkSpec{})
	} else {
		topo = topology.Generate(topology.GenSpec{
			ISDs: *isds, CoresPerISD: *cores, ProvidersPerISD: *providers,
			LeavesPerISD: *leaves, ProviderUplinks: 2, LeafUplinks: 2, Seed: *seed,
		})
	}
	if err := topo.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "invalid topology:", err)
		os.Exit(1)
	}
	fmt.Print(topo.String())

	reg := segment.Discover(topo, segment.DiscoverOpts{})
	fmt.Println("\nsegments:")
	for _, as := range topo.NonCoreASes() {
		for _, seg := range reg.UpSegments(as.IA) {
			fmt.Println(" ", seg)
		}
	}
	coreASes := topo.CoreASes()
	for _, a := range coreASes {
		for _, b := range coreASes {
			for _, seg := range reg.CoreSegments(a.IA, b.IA) {
				fmt.Println(" ", seg)
			}
		}
	}

	if *src != "" && *dst != "" {
		s, err := parseIA(*src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		d, err := parseIA(*dst)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		paths, err := reg.Paths(s, d, 10)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\npaths %s → %s:\n", s, d)
		for _, p := range paths {
			fmt.Printf("  [%d hops, min capacity %d kbps] %s\n",
				p.Len(), p.MinCapacityKbps(topo), p)
		}
	}
}
