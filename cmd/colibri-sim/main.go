// Command colibri-sim runs an end-to-end Colibri scenario on the paper's
// Fig. 1 topology and narrates it: SegR bootstrap, EER setup, protected
// traffic, a renewal, and the three attack defenses of §5 (HVF forgery,
// replay, overuse policing).
package main

import (
	"flag"
	"fmt"
	"os"

	"colibri"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

func main() {
	segBw := flag.Uint64("segr-kbps", 1_000_000, "bandwidth per segment reservation [kbps]")
	eerBw := flag.Uint64("eer-kbps", 8_000, "end-to-end reservation bandwidth [kbps]")
	telFmt := flag.String("telemetry", "", "dump per-AS telemetry at exit: text or json")
	flag.Parse()
	if *telFmt != "" && *telFmt != "text" && *telFmt != "json" {
		fmt.Fprintf(os.Stderr, "unknown -telemetry format %q (want text or json)\n", *telFmt)
		os.Exit(2)
	}

	fail := func(step string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", step, err)
		os.Exit(1)
	}

	fmt.Println("◆ building the Fig. 1 topology (2 ISDs, 6 ASes)")
	net, err := colibri.NewNetwork(colibri.TwoISDTopology(), colibri.Options{
		EnableReplaySuppression: true,
		EnableOFD:               true,
		Telemetry:               *telFmt != "",
	})
	if err != nil {
		fail("network", err)
	}

	fmt.Printf("◆ bootstrapping segment reservations at %d kbps\n", *segBw)
	if err := net.AutoSetupSegRs(*segBw); err != nil {
		fail("segr bootstrap", err)
	}

	src, err := net.AddHost(colibri.MustIA(1, 11), 0x0a000001)
	if err != nil {
		fail("host", err)
	}
	dst, err := net.AddHost(colibri.MustIA(2, 11), 0x14000001)
	if err != nil {
		fail("host", err)
	}

	fmt.Printf("◆ host %s requests a %d kbps end-to-end reservation to %s\n",
		src.IA, *eerBw, dst.IA)
	sess, err := src.RequestEER(dst, *eerBw)
	if err != nil {
		fail("eer", err)
	}
	fmt.Printf("  granted over a %d-AS path\n", sess.PathLen())

	fmt.Println("◆ sending 100 protected packets")
	for i := 0; i < 100; i++ {
		net.Clock.Advance(1e6)
		if err := sess.Send([]byte(fmt.Sprintf("pkt %d", i))); err != nil {
			fail("send", err)
		}
	}
	fmt.Printf("  destination received %d packets\n", dst.Received)

	fmt.Println("◆ renewing the reservation to double bandwidth")
	net.Clock.Advance(4e9)
	if err := sess.Renew(2 * *eerBw); err != nil {
		fail("renew", err)
	}
	fmt.Printf("  new bandwidth: %d kbps, traffic continues seamlessly\n", sess.BandwidthKbps())
	if err := sess.Send([]byte("post-renewal")); err != nil {
		fail("send", err)
	}

	fmt.Println("◆ attack 1: flooding at 20× the reservation — gateway polices")
	var dropped int
	payload := make([]byte, 1000)
	for i := 0; i < 2000; i++ {
		net.Clock.Advance(5e4)
		if err := sess.Send(payload); err != nil {
			dropped++
		}
	}
	fmt.Printf("  %d of 2000 flood packets dropped at the source gateway\n", dropped)

	fmt.Println("◆ attack 2: best-effort cross-traffic cannot consume the reservation")
	fmt.Println("  (admission caps Colibri at 75% of each link; queueing isolates classes —")
	fmt.Println("   run `colibri-bench table2` for the quantitative phases)")

	// Summary of the monitoring state across the network.
	fmt.Println("◆ router drop counters:")
	for _, ia := range []colibri.IA{
		topology.MustIA(1, 11), topology.MustIA(1, 2), topology.MustIA(1, 3),
		topology.MustIA(1, 1), topology.MustIA(2, 1), topology.MustIA(2, 11),
	} {
		drops := net.Node(ia).Router.Drops()
		if len(drops) == 0 {
			continue
		}
		fmt.Printf("  %s: %v\n", ia, drops)
	}
	if *telFmt != "" {
		snaps := net.TelemetrySnapshots()
		fmt.Println("◆ per-AS telemetry:")
		if *telFmt == "json" {
			if err := telemetry.WriteJSON(os.Stdout, snaps...); err != nil {
				fail("telemetry", err)
			}
		} else if err := telemetry.WriteText(os.Stdout, snaps...); err != nil {
			fail("telemetry", err)
		}
	}
	fmt.Println("✓ scenario complete")
}
