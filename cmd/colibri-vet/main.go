// Command colibri-vet is the project's invariant gate: a stdlib-only static
// analyzer enforcing the properties the paper's evaluation rests on —
// deterministic simulation/admission code, allocation-free batch hot paths,
// lock and telemetry discipline, and checked errors. It walks the module by
// directory (no go/packages dependency), type-checks each package with a
// hybrid importer (module-internal packages loaded from source siblings,
// the standard library through go/importer's source importer), and exits
// non-zero when any finding survives suppression.
//
// Usage:
//
//	go run ./cmd/colibri-vet ./...            # human-readable, exit 1 on findings
//	go run ./cmd/colibri-vet -json ./...      # CI gate: JSON report on stdout
//	go run ./cmd/colibri-vet -checks determinism,locks ./internal/cserv
//
// Annotation grammar (see DESIGN.md §5, §5a):
//
//	//colibri:allow(check[,check...])   suppress on this line (or next, if alone)
//	//colibri:ordered                   file opt-out of the map-iteration rule
//	//colibri:nomalloc                  function must not heap-allocate
//	//colibri:singlewriter              atomic field written by exactly one func
//	//colibri:shardowned                struct is shard-private state
//	//colibri:unbounded(reason)         intentional rendezvous channel
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("colibri-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit a JSON report (for CI) instead of file:line text")
		checks   = fs.String("checks", "determinism,nomalloc,locks,telemetry,errors,atomics,shardown,goroutines", "comma-separated checks to run")
		detPkgs  = fs.String("deterministic", "netsim,cserv,admission,experiments,reservation,restree,policy", "package names held to the determinism rules")
		chdir    = fs.String("C", "", "change to this directory before resolving patterns")
		typeErrs = fs.Bool("typecheck-strict", false, "fail on type-checking errors instead of analyzing best-effort")
		baseline = fs.String("baseline", "", "JSON report of accepted findings: matching findings are reported as baselined, only new ones fail")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "colibri-vet:", err)
		return 2
	}
	if *chdir != "" {
		cwd = *chdir
	}

	findings, nerr := Analyze(cwd, patterns, strings.Split(*checks, ","), strings.Split(*detPkgs, ","), *baseline, *jsonOut, *typeErrs, stdout, stderr)
	if nerr != 0 {
		return 2
	}
	if findings > 0 {
		return 1
	}
	return 0
}

// Analyze loads the packages matched by patterns under cwd's module, runs
// the selected checks and writes the report. It returns the finding count
// and a non-zero error count on infrastructure failures. When baselinePath
// names a committed JSON report, findings matching it are filtered to a
// baselined tally so CI fails only on new findings (annotated burn-down).
func Analyze(cwd string, patterns, checkNames, detPkgs []string, baselinePath string, jsonOut, strict bool, stdout, stderr io.Writer) (findings, errs int) {
	loader, err := NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "colibri-vet:", err)
		return 0, 1
	}

	var dirs []string
	seen := map[string]bool{}
	for _, p := range patterns {
		ds, err := loader.PackageDirs(cwd, p)
		if err != nil {
			fmt.Fprintln(stderr, "colibri-vet:", err)
			return 0, 1
		}
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "colibri-vet: no packages match", strings.Join(patterns, " "))
		return 0, 1
	}

	var pkgs []*Pkg
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			fmt.Fprintf(stderr, "colibri-vet: loading %s: %v\n", d, err)
			return 0, 1
		}
		if len(p.TypeErrs) > 0 && strict {
			for _, te := range p.TypeErrs {
				fmt.Fprintln(stderr, "colibri-vet: typecheck:", te)
			}
			return 0, 1
		}
		pkgs = append(pkgs, p)
	}

	// Suppressions must be indexed before any check reports.
	sup := NewSuppressionIndex()
	for _, p := range pkgs {
		for _, f := range p.Files {
			sup.AddFile(loader.Fset, f)
		}
	}
	rep := NewReporter(loader.ModRoot, loader.Fset, sup)

	enabled := map[string]bool{}
	for _, c := range checkNames {
		enabled[strings.TrimSpace(c)] = true
	}
	det := map[string]bool{}
	for _, p := range detPkgs {
		det[strings.TrimSpace(p)] = true
	}

	detCheck := &determinismCheck{pkgs: det}
	nmCheck := &nomallocCheck{}
	lkCheck := &locksCheck{}
	telCheck := &telemetryCheck{}
	errCheck := &errcheckCheck{}
	atCheck := &atomicsCheck{}
	soCheck := &shardownCheck{}
	grCheck := &goroutinesCheck{}
	for _, p := range pkgs {
		if enabled[checkDeterminism] {
			detCheck.Run(p, rep)
		}
		if enabled[checkNomalloc] {
			nmCheck.Run(p, rep)
		}
		if enabled[checkLocks] {
			lkCheck.Run(p, rep)
		}
		if enabled[checkTelemetry] {
			telCheck.Run(p, rep)
		}
		if enabled[checkErrors] {
			errCheck.Run(p, rep)
		}
		if enabled[checkAtomics] {
			atCheck.Run(p, rep)
		}
		if enabled[checkShardown] {
			soCheck.Run(p, rep)
		}
		if enabled[checkGoroutines] {
			grCheck.Run(p, rep)
		}
	}
	if enabled[checkTelemetry] {
		telCheck.Finish(rep)
	}
	if enabled[checkAtomics] {
		atCheck.Finish(rep)
	}
	if enabled[checkShardown] {
		soCheck.Finish(rep)
	}

	if baselinePath != "" {
		base, err := loadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "colibri-vet: baseline:", err)
			return 0, 1
		}
		n := rep.ApplyBaseline(base)
		if n > 0 {
			fmt.Fprintf(stderr, "colibri-vet: %d finding(s) matched the committed baseline\n", n)
		}
	}

	if jsonOut {
		if err := rep.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "colibri-vet:", err)
			return 0, 1
		}
	} else {
		rep.WriteText(stdout)
	}
	return len(rep.Findings()), 0
}

// loadBaseline reads a committed colibri-vet -json report. Its findings are
// the accepted burn-down set: they don't fail the gate, new ones do.
func loadBaseline(path string) ([]Finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep.Findings, nil
}
