// goroutines.go — check "goroutines": worker fan-out must not leak. The
// sharded planes spawn goroutines in exactly two disciplined shapes — a
// persistent pool joined by a dispatch barrier (shardpool, netsim's parallel
// engine) and a bounded scatter joined by a WaitGroup — and every channel
// that feeds them states its capacity. Two rules:
//
//  1. Joined goroutines: every `go` statement must have a recognizable join:
//     the spawned body (a function literal, or a same-package function or
//     method the analyzer can resolve and inspect) signals a
//     sync.WaitGroup (`wg.Done()`, usually deferred), sends its result on a
//     collection channel, or is a worker loop draining a channel
//     (`for x := range ch`), which the owner joins by closing the channel.
//     Anything else — fire-and-forget literals, cross-package spawns — is a
//     finding: an unjoined goroutine is state the dispatch barrier no
//     longer covers (and a leak under churn).
//
//  2. Explicit channel bounds: every `make(chan T, n)` states its capacity;
//     a bare `make(chan T)` must carry //colibri:unbounded(reason) — the
//     author's statement that rendezvous blocking IS the backpressure
//     design (netsim's work channel) — or it is a finding. An implicit
//     zero capacity deadlocks fire-and-forget senders and hides the
//     fan-out bound the pool's memory argument needs.
package main

import (
	"go/ast"
	"go/types"
)

const checkGoroutines = "goroutines"

type goroutinesCheck struct{}

func (c *goroutinesCheck) Run(p *Pkg, r *Reporter) {
	// Index the package's function declarations so `go pkgFunc(...)` and
	// `go recv.method(...)` spawns can be inspected for a join.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				c.checkGo(n, p, decls, r)
			case *ast.CallExpr:
				c.checkMakeChan(n, p, r)
			}
			return true
		})
	}
}

func (c *goroutinesCheck) checkGo(g *ast.GoStmt, p *Pkg, decls map[types.Object]*ast.FuncDecl, r *Reporter) {
	var body *ast.BlockStmt
	what := "goroutine"
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if fd, ok := decls[p.Info.Uses[fun]]; ok {
			body = fd.Body
			what = fun.Name
		}
	case *ast.SelectorExpr:
		if fd, ok := decls[p.Info.Uses[fun.Sel]]; ok {
			body = fd.Body
			what = fun.Sel.Name
		}
	}
	if body == nil {
		r.Report(g.Pos(), checkGoroutines,
			"go statement spawns a function the analyzer cannot inspect for a join: wrap it in a literal that signals a WaitGroup or collection channel, or annotate //colibri:allow(goroutines)")
		return
	}
	if joinedBody(body, p.Info) {
		return
	}
	r.Report(g.Pos(), checkGoroutines,
		"unjoined goroutine (%s): no WaitGroup Done, result send, or channel-draining worker loop found — join every spawn (barrier, WaitGroup, or collected channel) so fan-out cannot leak", what)
}

// joinedBody recognizes the three join disciplines in a spawned body.
func joinedBody(body *ast.BlockStmt, info *types.Info) bool {
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// wg.Done() on a sync.WaitGroup.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if selInfo, ok := info.Selections[sel]; ok {
					if m, ok := selInfo.Obj().(*types.Func); ok && m.Pkg() != nil && m.Pkg().Path() == "sync" {
						joined = true
						return false
					}
				} else if t := info.Types[sel.X].Type; t != nil &&
					(t.String() == "sync.WaitGroup" || t.String() == "*sync.WaitGroup") {
					joined = true
					return false
				}
			}
		case *ast.SendStmt:
			// Result collection: the spawner (or a sibling) receives.
			joined = true
			return false
		case *ast.RangeStmt:
			// Worker loop over a channel: joined by close().
			if t := info.Types[n.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					joined = true
					return false
				}
			}
		}
		return true
	})
	return joined
}

// checkMakeChan flags channel makes without an explicit capacity.
func (c *goroutinesCheck) checkMakeChan(call *ast.CallExpr, p *Pkg, r *Reporter) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return
	}
	t := p.Info.Types[call.Args[0]].Type
	if t == nil {
		return
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return
	}
	if len(call.Args) >= 2 {
		return // explicit bound
	}
	r.Report(call.Pos(), checkGoroutines,
		"channel made without an explicit capacity: state the fan-out bound (make(chan T, n)) or annotate //colibri:unbounded(reason) for an intentional rendezvous channel")
}
