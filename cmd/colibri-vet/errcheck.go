// errcheck.go — check "errors": a dropped error in internal/ is a silent
// protocol violation waiting to be measured as a mystery (a failed renewal
// that looks like loss, a short write that corrupts a figure). Statements
// that call a function returning an error without consuming any result are
// flagged.
//
// Deliberate discards stay cheap and visible: assign to blank (`_ = f()`).
// Excluded by policy: _test.go files, and fmt.Fprint* into in-memory sinks
// (*strings.Builder, *bytes.Buffer) whose Write cannot fail.
package main

import (
	"go/ast"
	"go/types"
	"strings"
)

const checkErrors = "errors"

type errcheckCheck struct{}

func (c *errcheckCheck) Run(p *Pkg, r *Reporter) {
	if !strings.Contains(p.ImportPath, "/internal/") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				if cl, ok := n.X.(*ast.CallExpr); ok {
					call = cl
				}
			case *ast.GoStmt:
				call = n.Call
			case *ast.DeferStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			if !returnsError(call, p.Info) {
				return true
			}
			if isFprintToBuffer(call, p.Info) {
				return true
			}
			r.Report(call.Pos(), checkErrors,
				"unchecked error returned by %s: handle it or discard explicitly with _ =", callName(call))
			return true
		})
	}
}

// returnsError reports whether the call's type is error or a tuple whose
// last element is error.
func returnsError(call *ast.CallExpr, info *types.Info) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	named, ok := last.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil // the universe error type
}

// isFprintToBuffer reports whether call is fmt.Fprint/Fprintf/Fprintln whose
// writer is an in-memory sink that cannot fail.
func isFprintToBuffer(call *ast.CallExpr, info *types.Info) bool {
	pkgPath, fn := pkgFuncCall(call, info)
	if pkgPath != "fmt" || !strings.HasPrefix(fn, "Fprint") || len(call.Args) == 0 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	s := tv.Type.String()
	return s == "*strings.Builder" || s == "*bytes.Buffer" ||
		s == "strings.Builder" || s == "bytes.Buffer"
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
