package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureDir returns the absolute path of the fixture module, a standalone
// module (its own go.mod) holding one package per check with positive,
// negative and suppressed cases.
func fixtureDir(t testing.TB) string {
	t.Helper()
	d, err := filepath.Abs(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFixtures runs the analyzer exactly as CI does (through run, covering
// flag plumbing and exit codes) against the fixture module, one check per
// case, and compares the text report with a golden file. Each positive case
// reintroduces one seeded bug class from the acceptance checklist — time.Now
// in netsim, an unsorted map range in cserv, an alloc in router.ProcessBatch
// — and must exit non-zero.
func TestFixtures(t *testing.T) {
	fix := fixtureDir(t)
	cases := []struct {
		name     string
		checks   string
		pattern  string
		wantExit int
	}{
		{"determinism_netsim", "determinism", "./netsim/...", 1},
		{"determinism_parallel", "determinism", "./netsimpar/...", 1},
		{"determinism_cserv", "determinism", "./cserv/...", 1},
		{"determinism_restree", "determinism", "./restree/...", 1},
		{"determinism_policy", "determinism", "./policy/...", 1},
		{"nomalloc_restree", "nomalloc", "./restree/...", 1},
		{"locks", "locks", "./locks/...", 1},
		{"telemetry", "telemetry", "./tel/...", 1},
		{"errors", "errors", "./internal/...", 1},
		{"nomalloc_router", "nomalloc", "./router/...", 1},
		{"nomalloc_sharded", "nomalloc", "./sharded/...", 1},
		{"locks_sharded", "locks", "./sharded/...", 1},
		// Concurrency-invariant suite: each fixture seeds a mixed atomic
		// access, an owned-field alias escape, and an unjoined goroutine.
		{"atomics", "atomics", "./atomics/...", 1},
		{"shardown", "shardown", "./shardown/...", 1},
		{"goroutines", "goroutines", "./goroutines/...", 1},
		// A package with none of the requested check's subjects is clean.
		{"clean", "locks", "./cserv/...", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			exit := run([]string{"-C", fix, "-checks", tc.checks, tc.pattern}, &stdout, &stderr)
			if stderr.Len() > 0 {
				t.Logf("stderr:\n%s", stderr.String())
			}
			if exit != tc.wantExit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s", exit, tc.wantExit, stdout.String())
			}
			golden := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (rerun with -update): %v", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("report differs from %s:\n got:\n%s\nwant:\n%s", golden, stdout.String(), want)
			}
		})
	}
}

// TestJSONReport checks the CI envelope: findings plus count and the
// suppressed tally (netsim's fixture carries one //colibri:allow line).
func TestJSONReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	exit := run([]string{"-C", fixtureDir(t), "-json", "-checks", "determinism", "./netsim/..."}, &stdout, &stderr)
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", exit, stderr.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if rep.Count != len(rep.Findings) || rep.Count != 3 {
		t.Errorf("count = %d, findings = %d, want 3", rep.Count, len(rep.Findings))
	}
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (SuppressedNow's allow line)", rep.Suppressed)
	}
	for _, f := range rep.Findings {
		if f.Check != "determinism" {
			t.Errorf("unexpected check %q in %v", f.Check, f)
		}
	}
}

// TestBaseline covers the CI burn-down flow: a committed -json report is the
// accepted set, matching findings stop failing the gate, and a baseline that
// covers everything exits 0 while anything new still fails.
func TestBaseline(t *testing.T) {
	fix := fixtureDir(t)

	// First pass: capture the fixture's atomics findings as the baseline.
	var report, stderr bytes.Buffer
	if exit := run([]string{"-C", fix, "-json", "-checks", "atomics", "./atomics/..."}, &report, &stderr); exit != 1 {
		t.Fatalf("seed run exit = %d, want 1\nstderr:\n%s", exit, stderr.String())
	}
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, report.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second pass under the baseline: everything matches, the gate passes.
	var stdout bytes.Buffer
	stderr.Reset()
	if exit := run([]string{"-C", fix, "-json", "-checks", "atomics", "-baseline", base, "./atomics/..."}, &stdout, &stderr); exit != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", exit, stdout.String(), stderr.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if rep.Count != 0 || rep.Baselined == 0 {
		t.Errorf("count = %d, baselined = %d; want 0 findings and a non-zero baselined tally", rep.Count, rep.Baselined)
	}

	// A baseline that does NOT cover a finding leaves the gate failing:
	// findings from a different check are new by definition.
	stdout.Reset()
	stderr.Reset()
	if exit := run([]string{"-C", fix, "-checks", "shardown", "-baseline", base, "./shardown/..."}, &stdout, &stderr); exit != 1 {
		t.Fatalf("uncovered run exit = %d, want 1\nstdout:\n%s", exit, stdout.String())
	}
}

// TestSelfClean is the gate's fixed point: the analyzer must exit 0 on the
// repository that ships it. (The nomalloc check is exercised separately by
// the fixtures; running it here would rebuild half the module per test run.)
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	exit := run([]string{"-C", root, "-checks", "determinism,locks,telemetry,errors,atomics,shardown,goroutines", "./..."}, &stdout, &stderr)
	if exit != 0 {
		t.Fatalf("colibri-vet is not clean on its own tree (exit %d):\n%s%s", exit, stdout.String(), stderr.String())
	}
}
