// telemetrycheck.go — check "telemetry": instrument names are a public,
// grep-able contract between the code, EXPERIMENTS.md and any dashboards
// parsing exporter output, so they are held to two rules:
//
//  1. Naming convention: every name passed to Registry.Counter / Gauge /
//     Histogram / Tracer must be a literal matching
//     `component.metric[_unit]` — lowercase dotted segments, underscores
//     inside a segment only ("gateway.lookup_ns"). Dynamic (non-literal)
//     names defeat grep and risk unbounded-cardinality registries, and are
//     flagged too.
//
//  2. Registered once: the same name must not be registered at two distinct
//     call sites — whether as two different instrument kinds (a hard
//     conflict: the registry would hold two instruments with one name) or
//     twice as the same kind (two components silently sharing or shadowing
//     one series). Re-resolving in the same call site (loops, multiple
//     instances) is fine: identity is the source position.
//
// The check is module-wide: registrations are collected per package and
// reconciled after the last package is analyzed.
package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
)

const checkTelemetry = "telemetry"

var instrumentKinds = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true, "Tracer": true}

// nameRe is the registry naming convention.
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9]*(_[a-z0-9]+)*)+$`)

// registration is one Registry.<Kind>("name") call site.
type registration struct {
	name string
	kind string
	pos  token.Pos
}

type telemetryCheck struct {
	regs []registration
}

func (c *telemetryCheck) Run(p *Pkg, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !instrumentKinds[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if !c.isRegistryMethod(sel, p.Info) {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				r.Report(call.Args[0].Pos(), checkTelemetry,
					"dynamic instrument name passed to Registry.%s: use a literal so the series is grep-able and cardinality bounded", sel.Sel.Name)
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !nameRe.MatchString(name) {
				r.Report(lit.Pos(), checkTelemetry,
					"instrument name %q violates the component.metric[_unit] convention (lowercase dotted segments)", name)
			}
			c.regs = append(c.regs, registration{name: name, kind: sel.Sel.Name, pos: call.Pos()})
			return true
		})
	}
}

// isRegistryMethod reports whether sel is a method call on a type named
// Registry declared in a package named telemetry (matched structurally so
// fixture modules with a mini telemetry package exercise the check too).
func (c *telemetryCheck) isRegistryMethod(sel *ast.SelectorExpr, info *types.Info) bool {
	selInfo, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := selInfo.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && pathBase(obj.Pkg().Path()) == "telemetry"
}

// Finish reconciles registrations across all analyzed packages.
func (c *telemetryCheck) Finish(r *Reporter) {
	byName := map[string][]registration{}
	for _, reg := range c.regs {
		byName[reg.name] = append(byName[reg.name], reg)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		regs := byName[n]
		if len(regs) < 2 {
			continue
		}
		sort.Slice(regs, func(i, j int) bool { return regs[i].pos < regs[j].pos })
		first := regs[0]
		for _, dup := range regs[1:] {
			if dup.kind != first.kind {
				r.Report(dup.pos, checkTelemetry,
					"instrument %q registered as %s here but as %s at %s: one name, one kind",
					n, dup.kind, first.kind, r.PosString(first.pos))
			} else {
				r.Report(dup.pos, checkTelemetry,
					"instrument %q already registered at %s: register once and share the handle (or rename the series)",
					n, r.PosString(first.pos))
			}
		}
	}
}
