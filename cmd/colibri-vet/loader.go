// loader.go locates the module, enumerates its package directories and
// type-checks each one with full cross-package information — without
// golang.org/x/tools: module-internal imports are resolved by recursively
// loading the sibling directory, standard-library imports by the stdlib
// source importer (go/importer "source"), which needs only GOROOT/src.
package main

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Pkg is one loaded, type-checked package directory.
type Pkg struct {
	ImportPath string
	Dir        string
	Name       string
	Files      []*ast.File // non-test files surviving build-tag filtering
	Info       *types.Info
	TypesPkg   *types.Package
	TypeErrs   []error
}

// Loader loads and caches the module's packages.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std   types.ImporterFrom
	cache map[string]*Pkg
}

// NewLoader finds the enclosing module of dir by walking up to go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "module ") {
			modPath = strings.Trim(strings.TrimSpace(strings.TrimPrefix(line, "module")), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		cache:   map[string]*Pkg{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// PackageDirs expands a pattern relative to the working directory into the
// module's package directories. Supported forms: "./...", "dir/...", "dir",
// ".". Directories named testdata, vendor or starting with "." or "_" are
// skipped, as are directories without non-test .go files.
func (l *Loader) PackageDirs(cwd, pattern string) ([]string, error) {
	base := cwd
	rec := false
	p := pattern
	if p == "..." || strings.HasSuffix(p, "/...") {
		rec = true
		p = strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
	}
	if p != "" && p != "." {
		base = filepath.Join(cwd, p)
	}
	base, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	var dirs []string
	if !rec {
		if hasGoFiles(base) {
			dirs = append(dirs, base)
		}
		return dirs, nil
	}
	err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		// Nested modules are separate analysis roots.
		if path != base {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// ImportPathFor maps a directory inside the module to its import path.
func (l *Loader) ImportPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// Load parses and type-checks the package in dir (cached by import path).
// Test files are excluded; files whose build constraints do not match the
// default tag set (GOOS, GOARCH, no "race") are skipped so that mutually
// exclusive file pairs like race_on.go/race_off.go don't collide.
func (l *Loader) Load(dir string) (*Pkg, error) {
	ip, err := l.ImportPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(ip, dir)
}

func (l *Loader) load(importPath, dir string) (*Pkg, error) {
	if p, ok := l.cache[importPath]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildTagsMatch(f) {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			// Mixed package clauses (shouldn't happen outside testdata).
			continue
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	p := &Pkg{ImportPath: importPath, Dir: dir, Name: pkgName, Files: files, Info: info}
	l.cache[importPath] = p // pre-insert: harmless for acyclic imports, and Go forbids cycles
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
	}
	tp, err := conf.Check(importPath, l.Fset, files, info)
	p.TypesPkg = tp
	if err != nil && tp == nil {
		return nil, err
	}
	return p, nil
}

// loaderImporter adapts Loader to types.ImporterFrom.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		p, err := l.load(path, filepath.Join(l.ModRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if p.TypesPkg == nil {
			return nil, fmt.Errorf("type-checking %s failed", path)
		}
		return p.TypesPkg, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// buildTagsMatch evaluates a file's //go:build constraint against the host
// GOOS/GOARCH with no extra tags (so "!race" files are kept, "race" files
// skipped — matching the default build the analyzer reasons about).
func buildTagsMatch(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				switch tag {
				case runtime.GOOS, runtime.GOARCH, "gc":
					return true
				}
				// go1.x version tags are all satisfied by the current toolchain.
				if strings.HasPrefix(tag, "go1.") {
					return true
				}
				return false
			})
		}
	}
	return true
}
