// shardown.go — check "shardown": the sharded data and control planes
// (router.Sharded, gateway.Sharded, cserv.CPlane; DESIGN.md §§7–8) are
// race-free by OWNERSHIP, not by locking: each shard struct's state is
// touched by exactly one goroutine per dispatch window, handed between the
// dispatcher and a pool worker by the shardpool barrier. That argument dies
// silently the moment owned state is reachable from anywhere else — so a
// struct type annotated //colibri:shardowned gets it enforced:
//
//  1. Containment: a field of a shard-owned type may only be accessed from
//     (a) methods of the type itself, (b) methods of a same-package holder
//     type (a struct with a field whose type reaches the owned type —
//     the dispatching front end, whose Merge()/Counts() reconciliation
//     points live there too), or (c) same-package constructors
//     (New*/new*/init, pre-publication). Any other function touching an
//     owned field is a finding.
//
//  2. No aliasing out: inside the allowed contexts, owned state of
//     reference kind (pointer, slice, map, channel, function) must not
//     escape the ownership domain — returning an owned field (except from
//     Merge/Counts reconciliation or a constructor), sending one on a
//     channel, or capturing one in a function literal that itself escapes
//     (go statement, channel send, return, or assignment to non-local
//     storage) are findings. An alias that outlives the dispatch barrier
//     is a data race the ownership argument can no longer exclude.
//
// The check is module-wide: annotations are collected first, accesses
// reconciled in Finish.
package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

const checkShardown = "shardown"

type shardownCheck struct {
	pkgs []*Pkg
}

func (c *shardownCheck) Run(p *Pkg, r *Reporter) { c.pkgs = append(c.pkgs, p) }

func (c *shardownCheck) Finish(r *Reporter) {
	// owned: annotated struct types.
	owned := map[*types.TypeName]bool{}
	for _, p := range c.pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				declAnn := commentGroupHas(gd.Doc, "//colibri:shardowned")
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !declAnn && !commentGroupHas(ts.Doc, "//colibri:shardowned") &&
						!commentGroupHas(ts.Comment, "//colibri:shardowned") {
						continue
					}
					obj, ok := p.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					if _, isStruct := obj.Type().Underlying().(*types.Struct); !isStruct {
						r.Report(ts.Pos(), checkShardown,
							"//colibri:shardowned on %s, which is not a struct type: the annotation marks shard state structs", ts.Name.Name)
						continue
					}
					owned[obj] = true
				}
			}
		}
	}
	if len(owned) == 0 {
		return
	}

	// holders: for each owned type, the same-package struct types with a
	// field whose type reaches it (the dispatching front ends).
	holders := map[*types.TypeName]map[*types.TypeName]bool{}
	for ot := range owned {
		holders[ot] = map[*types.TypeName]bool{}
	}
	for _, p := range c.pkgs {
		scope := p.TypesPkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				for ot := range owned {
					if ot.Pkg() == tn.Pkg() && typeReaches(st.Field(i).Type(), ot, 0) {
						holders[ot][tn] = true
					}
				}
			}
		}
	}

	for _, p := range c.pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c.checkFunc(p, fd, owned, holders, r)
			}
		}
	}
}

// typeReaches reports whether t contains named (through pointers, slices,
// arrays, maps and channels — not through other named struct types, which
// are their own ownership domains).
func typeReaches(t types.Type, target *types.TypeName, depth int) bool {
	if depth > 4 {
		return false
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj() == target
	case *types.Pointer:
		return typeReaches(t.Elem(), target, depth+1)
	case *types.Slice:
		return typeReaches(t.Elem(), target, depth+1)
	case *types.Array:
		return typeReaches(t.Elem(), target, depth+1)
	case *types.Map:
		return typeReaches(t.Key(), target, depth+1) || typeReaches(t.Elem(), target, depth+1)
	case *types.Chan:
		return typeReaches(t.Elem(), target, depth+1)
	}
	return false
}

// recvTypeObj resolves a method's receiver base type object.
func recvTypeObj(fd *ast.FuncDecl, info *types.Info) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// ownedFieldSel reports whether sel selects a field of an owned type,
// returning the owned type.
func ownedFieldSel(sel *ast.SelectorExpr, info *types.Info, owned map[*types.TypeName]bool) *types.TypeName {
	selInfo, ok := info.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return nil
	}
	t := selInfo.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if owned[n.Obj()] {
		return n.Obj()
	}
	return nil
}

// isReferenceType reports whether aliasing a value of type t aliases shared
// state (pointer, slice, map, channel, function).
func isReferenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// reconciliationMethods are the holder methods allowed to hand owned state
// out: the explicit cross-shard reconciliation points.
var reconciliationMethods = map[string]bool{"Merge": true, "Counts": true}

func (c *shardownCheck) checkFunc(p *Pkg, fd *ast.FuncDecl, owned map[*types.TypeName]bool,
	holders map[*types.TypeName]map[*types.TypeName]bool, r *Reporter) {

	recv := recvTypeObj(fd, p.Info)
	ctor := isConstructorName(fd.Name.Name)

	allowed := func(ot *types.TypeName) bool {
		if recv != nil && recv == ot {
			return true // the owned type's own method
		}
		if recv != nil && holders[ot][recv] {
			return true // a holder's method (dispatch / reconciliation)
		}
		if ctor && p.TypesPkg == ot.Pkg() {
			return true // same-package constructor, pre-publication
		}
		return false
	}

	// Walk with a parent stack so escape contexts (what encloses a func
	// literal or an owned selector) are known.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.SelectorExpr:
			ot := ownedFieldSel(n, p.Info, owned)
			if ot == nil {
				return true
			}
			if !allowed(ot) {
				r.Report(n.Sel.Pos(), checkShardown,
					"field %s of shard-owned type %s touched outside its ownership domain (%s): only %s's methods, its holder's methods, and constructors may access shard state",
					n.Sel.Name, ot.Name(), fd.Name.Name, ot.Name())
				return true
			}
			c.checkEscape(p, fd, n, ot, stack, r)
		}
		return true
	})
}

// checkEscape flags an owned-field selector whose value aliases out of the
// ownership domain: returned, sent on a channel, or captured by an escaping
// function literal.
func (c *shardownCheck) checkEscape(p *Pkg, fd *ast.FuncDecl, sel *ast.SelectorExpr,
	ot *types.TypeName, stack []ast.Node, r *Reporter) {

	ft := p.Info.Types[sel].Type
	if ft == nil || !isReferenceType(ft) {
		return
	}
	// Capture: any reference to owned state inside a function literal that
	// escapes its frame aliases the state out, however indirectly the value
	// is used inside the closure.
	for i := len(stack) - 2; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			if funcLitEscapes(fl, stack[:i]) {
				r.Report(sel.Sel.Pos(), checkShardown,
					"shard-owned %s.%s captured by an escaping function literal in %s: the closure outlives the dispatch barrier and aliases shard state",
					ot.Name(), sel.Sel.Name, fd.Name.Name)
				return
			}
			break // non-escaping closure: its body is part of the frame
		}
	}
	// Direct flow: walk outward past alias-preserving wrappers to see
	// whether the selector value itself is returned or sent.
	cur := ast.Node(sel)
	for i := len(stack) - 2; i >= 0; i-- {
		parent := stack[i]
		switch pn := parent.(type) {
		case *ast.ParenExpr:
			cur = parent
			continue
		case *ast.ReturnStmt:
			if fd.Recv != nil && reconciliationMethods[fd.Name.Name] {
				return // explicit reconciliation point
			}
			if isConstructorName(fd.Name.Name) {
				return // pre-publication
			}
			for _, res := range pn.Results {
				if res == cur {
					r.Report(sel.Sel.Pos(), checkShardown,
						"shard-owned %s.%s aliased out via return from %s: owned state must stay inside the ownership domain (reconcile through Merge/Counts instead)",
						ot.Name(), sel.Sel.Name, fd.Name.Name)
					return
				}
			}
			return
		case *ast.SendStmt:
			if pn.Value == cur {
				r.Report(sel.Sel.Pos(), checkShardown,
					"shard-owned %s.%s sent on a channel from %s: a receiver would hold an alias that outlives the dispatch barrier",
					ot.Name(), sel.Sel.Name, fd.Name.Name)
			}
			return
		case ast.Expr:
			// Any other expression (index, call argument, binary op, ...)
			// derives a new value or stays local; the selector itself no
			// longer flows. Stop unless it is a plain passthrough.
			return
		default:
			return
		}
	}
}

// funcLitEscapes reports whether the function literal at the top of prefix
// outlives its enclosing call frame: spawned by go, sent on a channel,
// returned, or assigned/stored into non-local storage. A literal that is
// immediately invoked or passed as a plain call argument (sort.Slice and
// friends run it before returning) does not escape.
func funcLitEscapes(fl *ast.FuncLit, prefix []ast.Node) bool {
	if len(prefix) == 0 {
		return false
	}
	parent := prefix[len(prefix)-1]
	switch pn := parent.(type) {
	case *ast.GoStmt:
		return true
	case *ast.DeferStmt:
		return false // runs before the frame unwinds
	case *ast.SendStmt:
		return true
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		for _, lhs := range pn.Lhs {
			switch lhs.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				return true // stored into a field / element: outlives the frame
			}
		}
		return false
	case *ast.KeyValueExpr, *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if pn.Fun == fl {
			// Immediately invoked — unless the invocation is a go statement,
			// which runs the literal on a new goroutine past the barrier.
			if len(prefix) >= 2 {
				if _, isGo := prefix[len(prefix)-2].(*ast.GoStmt); isGo {
					return true
				}
			}
			return false
		}
		// Passed as an argument: conservatively treat goroutine spawners by
		// name (go-like helpers) as escaping, plain callbacks as not. The
		// tree's dispatch helpers take method values, not literals, so any
		// literal reaching here is a callback.
		if len(prefix) >= 2 {
			if _, isGo := prefix[len(prefix)-2].(*ast.GoStmt); isGo {
				return true
			}
		}
		return false
	}
	return false
}
