// locks.go — check "locks": two rules about sync.Mutex/RWMutex usage.
//
//  1. Release on every path: a lock acquired in a function (x.Lock() /
//     x.RLock()) must be released before every return that can execute
//     while it is held — either by a defer registered while held or by an
//     explicit Unlock/RUnlock on the path. The walker tracks held locks
//     through if/else, for, switch, select and blocks; it is intentionally
//     conservative and keyed by the receiver expression's source text.
//
//  2. No exporter calls under a lock: rendering telemetry (WriteText,
//     WriteJSON, Registry.Snapshot) does I/O and takes registry locks;
//     calling it while holding a mutex invites lock-order inversions and
//     stalls the hot path the mutex protects.
package main

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

const checkLocks = "locks"

type locksCheck struct{}

func (c *locksCheck) Run(p *Pkg, r *Reporter) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pkg: p, rep: r, fset: r.fset}
			end := w.block(fd.Body.List, newLockState())
			// Falling off the end of the body is an implicit return.
			if end != nil {
				for key, info := range end.held {
					if info.deferred {
						continue
					}
					w.rep.Report(fd.Body.Rbrace, checkLocks,
						"function %s ends with %s still held (acquired at %s): release on every path or defer the unlock",
						fd.Name.Name, key+lockKindSuffix(info), w.rep.PosString(info.pos))
				}
			}
		}
	}
}

// lockState is the set of locks held at a program point, keyed by the
// rendered receiver expression ("g.mu", "r.mu"); the value records the
// acquisition position and kind (read/write) for diagnostics.
type lockState struct {
	held map[string]lockInfo
}

type lockInfo struct {
	pos  token.Pos
	read bool
	// deferred marks a lock whose release is already registered with defer:
	// it no longer leaks at returns, but the critical section still extends
	// to the end of the function, so exporter calls under it stay findings.
	deferred bool
}

func newLockState() *lockState { return &lockState{held: map[string]lockInfo{}} }

func (s *lockState) clone() *lockState {
	n := newLockState()
	for k, v := range s.held {
		n.held[k] = v
	}
	return n
}

type lockWalker struct {
	pkg  *Pkg
	rep  *Reporter
	fset *token.FileSet
}

// lockCall classifies expr as a mutex operation on a sync.Mutex/RWMutex
// receiver: returns the receiver key and the method name, or "" when expr is
// not a mutex op.
func (w *lockWalker) lockCall(call *ast.CallExpr) (key, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", ""
	}
	// The receiver must be (or embed) a sync mutex: resolve the method's
	// package through the selection.
	if selInfo, ok := w.pkg.Info.Selections[sel]; ok {
		if fn, ok := selInfo.Obj().(*types.Func); ok {
			if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				return "", ""
			}
		}
	} else {
		// Unresolvable (e.g. partial type info): fall back to the method
		// name heuristic, which is what the receiver-text key needs anyway.
		recvT := w.pkg.Info.Types[sel.X].Type
		if recvT == nil || !strings.Contains(recvT.String(), "sync.") {
			return "", ""
		}
	}
	return exprKey(w.fset, sel.X), sel.Sel.Name
}

// exprKey renders an expression as its source text, the identity used to
// match Lock sites with Unlock sites.
func exprKey(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	_ = printer.Fprint(&b, fset, e)
	return b.String()
}

// telemetryExporterCall reports whether call enters a telemetry exporter:
// a package-level function of a "telemetry" package whose name starts with
// Write, or the Snapshot method of its Registry.
func (w *lockWalker) telemetryExporterCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkgPath, fn := pkgFuncCall(call, w.pkg.Info); pkgPath != "" {
		if pathBase(pkgPath) == "telemetry" && strings.HasPrefix(fn, "Write") {
			return "telemetry." + fn, true
		}
		return "", false
	}
	if selInfo, ok := w.pkg.Info.Selections[sel]; ok && sel.Sel.Name == "Snapshot" {
		recv := selInfo.Recv().String()
		if strings.HasSuffix(recv, "telemetry.Registry") || strings.HasSuffix(recv, "*telemetry.Registry") {
			return "Registry.Snapshot", true
		}
	}
	return "", false
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// block walks a statement list with the current lock state, reporting
// returns that leak a held lock, and returns the state at fall-through.
// Terminal statements (return, panic) yield a nil state.
func (w *lockWalker) block(stmts []ast.Stmt, st *lockState) *lockState {
	for _, s := range stmts {
		st = w.stmt(s, st)
		if st == nil {
			return nil
		}
	}
	return st
}

func (w *lockWalker) stmt(s ast.Stmt, st *lockState) *lockState {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			st = w.call(call, st)
		}
		return st
	case *ast.DeferStmt:
		if key, m := w.lockCall(s.Call); key != "" {
			switch m {
			case "Unlock", "RUnlock":
				// A deferred release covers every later return, but the lock
				// stays held until the function exits for rule 2's purposes.
				if info, ok := st.held[key]; ok {
					info.deferred = true
					st.held[key] = info
				}
			}
		}
		return st
	case *ast.ReturnStmt:
		// Result expressions are evaluated before any deferred unlock runs.
		for _, e := range s.Results {
			w.exprCalls(e, st)
		}
		for key, info := range st.held {
			if info.deferred {
				continue
			}
			w.rep.Report(s.Pos(), checkLocks,
				"return while %s is still held (acquired at %s): release on every path or defer the unlock",
				key+lockKindSuffix(info), w.rep.PosString(info.pos))
		}
		return nil
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
			if st == nil {
				return nil
			}
		}
		w.exprCalls(s.Cond, st)
		thenSt := w.block(s.Body.List, st.clone())
		var elseSt *lockState
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseSt = w.block(e.List, st.clone())
			case *ast.IfStmt:
				elseSt = w.stmt(e, st.clone())
			}
		} else {
			elseSt = st.clone()
		}
		return mergeStates(thenSt, elseSt)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
			if st == nil {
				return nil
			}
		}
		body := w.block(s.Body.List, st.clone())
		// Fall-through state: a loop may run zero times; merge entry state
		// with the body's exit state.
		return mergeStates(st, body)
	case *ast.RangeStmt:
		body := w.block(s.Body.List, st.clone())
		return mergeStates(st, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(s, st)
	case *ast.BlockStmt:
		return w.block(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.exprCalls(e, st)
		}
		return st
	case *ast.GoStmt:
		// The goroutine body runs later; its lock usage is its own function's
		// problem. Nothing changes for the current state.
		return st
	default:
		return st
	}
}

// call applies a mutex operation or checks an exporter call, and scans
// arguments for nested calls.
func (w *lockWalker) call(call *ast.CallExpr, st *lockState) *lockState {
	if key, m := w.lockCall(call); key != "" {
		switch m {
		case "Lock":
			st.held[key] = lockInfo{pos: call.Pos(), read: false}
		case "RLock":
			st.held[key] = lockInfo{pos: call.Pos(), read: true}
		case "Unlock", "RUnlock":
			delete(st.held, key)
		}
		return st
	}
	if name, ok := w.telemetryExporterCall(call); ok && len(st.held) > 0 {
		for key := range st.held {
			w.rep.Report(call.Pos(), checkLocks,
				"%s called while holding %s: export outside the critical section", name, key)
		}
	}
	for _, a := range call.Args {
		w.exprCalls(a, st)
	}
	return st
}

// exprCalls flags exporter calls nested inside an expression (conditions,
// assignments) evaluated while locks are held.
func (w *lockWalker) exprCalls(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := w.telemetryExporterCall(call); ok && len(st.held) > 0 {
				for key := range st.held {
					w.rep.Report(call.Pos(), checkLocks,
						"%s called while holding %s: export outside the critical section", name, key)
				}
			}
		}
		return true
	})
}

// branches walks each case clause of a switch/select independently and
// merges the fall-through states.
func (w *lockWalker) branches(s ast.Stmt, st *lockState) *lockState {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
			if st == nil {
				return nil
			}
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var out *lockState
	sawDefault := false
	for _, cc := range body.List {
		var stmts []ast.Stmt
		switch cc := cc.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
			if cc.List == nil {
				sawDefault = true
			}
		case *ast.CommClause:
			stmts = cc.Body
			if cc.Comm == nil {
				sawDefault = true
			}
		}
		out = mergeStates(out, w.block(stmts, st.clone()))
	}
	if !sawDefault || out == nil {
		// Without a default the switch may fall through unmatched.
		out = mergeStates(out, st)
	}
	return out
}

// mergeStates joins two fall-through states: a lock is held after the join
// if it is held on any branch that can fall through (conservative: flags
// the branch that forgot to unlock at the next return).
func mergeStates(a, b *lockState) *lockState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for k, v := range b.held {
		if _, ok := out.held[k]; !ok {
			out.held[k] = v
		}
	}
	return out
}

func lockKindSuffix(info lockInfo) string {
	if info.read {
		return " (RLock)"
	}
	return ""
}
