// determinism.go — check "determinism": packages tagged deterministic
// (simulation- and admission-facing code whose runs must be bit-reproducible
// under a fixed seed) must not read wall-clock time, must not draw from the
// global math/rand source, and must not iterate maps in an order-sensitive
// way.
//
// Flagged:
//   - calls to time.Now (and thus rand.NewSource(time.Now().UnixNano()));
//   - wall-clock waits — time.Sleep/After/Tick/NewTimer/NewTicker/AfterFunc:
//     real durations leak scheduling into results, which matters doubly now
//     that netsim's parallel engine runs event handlers on a worker pool
//     (a handler that sleeps skews whole safe windows);
//   - calls to package-level math/rand functions (Intn, Float64, Shuffle,
//     Perm, ...) which use the process-global source — seeded *rand.Rand
//     methods are fine, as are rand.New/NewSource/NewZipf constructors;
//   - `select` with two or more communicating cases: when several channels
//     are ready the runtime picks uniformly at random, so the winner is
//     schedule-dependent — goroutine-spawned handlers (netsim parallel
//     workers) must drain a single channel instead;
//   - `range` over a map, unless the loop body provably only accumulates
//     order-insensitively (commutative compound assignments, counters,
//     min/max folds, writes keyed by the range key, delete), the file
//     carries //colibri:ordered, or the line a //colibri:allow(determinism).
package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

const checkDeterminism = "determinism"

// randConstructors are the package-level math/rand functions that are safe
// in deterministic code: they build an explicitly seeded generator instead
// of drawing from the global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// timeReads are the time-package functions that read the wall clock.
var timeReads = map[string]bool{"Now": true, "Since": true, "Until": true}

// timeWaits are the time-package functions that wait on (or arm timers
// against) real durations; in deterministic code all waiting must happen in
// virtual time (netsim's event loop), never against the OS clock.
var timeWaits = map[string]bool{
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

type determinismCheck struct {
	// pkgs holds the base names of deterministic packages.
	pkgs map[string]bool
}

func (c *determinismCheck) Run(p *Pkg, r *Reporter) {
	if !c.pkgs[p.Name] {
		return
	}
	for _, f := range p.Files {
		filename := r.fset.Position(f.Pos()).Filename
		ast.Inspect(f, func(n ast.Node) bool {
			// Ranges are checked with their trailing statements in view, so
			// the collect-then-sort idiom can be recognized.
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.CallExpr:
				c.checkCall(n, p, r)
				return true
			case *ast.SelectStmt:
				c.checkSelect(n, p, r)
				return true
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, s := range list {
				if rs, ok := s.(*ast.RangeStmt); ok {
					c.checkRange(rs, list[i+1:], p, r, filename)
				}
			}
			return true
		})
	}
}

// pkgFuncCall resolves a call of the form pkg.Fn where pkg is an imported
// package, returning the package path and function name.
func pkgFuncCall(call *ast.CallExpr, info *types.Info) (pkgPath, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

func (c *determinismCheck) checkCall(call *ast.CallExpr, p *Pkg, r *Reporter) {
	pkgPath, fn := pkgFuncCall(call, p.Info)
	switch pkgPath {
	case "time":
		if timeReads[fn] {
			r.Report(call.Pos(), checkDeterminism,
				"time.%s in deterministic package %s: thread an injectable clock (core.Clock / netsim virtual time)", fn, p.Name)
		}
		if timeWaits[fn] {
			r.Report(call.Pos(), checkDeterminism,
				"time.%s in deterministic package %s: wall-clock waits make runs schedule-dependent — wait in virtual time (Shard.After / Sim.After)", fn, p.Name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn] {
			r.Report(call.Pos(), checkDeterminism,
				"global math/rand.%s in deterministic package %s: use an explicitly seeded *rand.Rand", fn, p.Name)
		}
	}
}

// checkSelect flags select statements with two or more communicating cases:
// when several channels are ready, the Go runtime chooses uniformly at
// random, so the winning case — and everything downstream of it — depends on
// scheduling. A single comm clause (with or without default) is a plain
// conditional receive/send and stays deterministic; that is the shape
// netsim's parallel workers use (`for chunk := range work`).
func (c *determinismCheck) checkSelect(sel *ast.SelectStmt, p *Pkg, r *Reporter) {
	comm := 0
	for _, s := range sel.Body.List {
		if cc, ok := s.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		r.Report(sel.Pos(), checkDeterminism,
			"select over %d channels in deterministic package %s: the ready-case choice is randomized by the runtime — drain one channel per goroutine (worker-pool pattern) instead", comm, p.Name)
	}
}

func (c *determinismCheck) checkRange(rs *ast.RangeStmt, rest []ast.Stmt, p *Pkg, r *Reporter, filename string) {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if r.suppress.Ordered(filename) {
		return
	}
	if orderInsensitiveBody(rs, p.Info) {
		return
	}
	if collectThenSorted(rs, rest, p.Info) {
		return
	}
	r.Report(rs.Pos(), checkDeterminism,
		"map iteration order leaks into results in deterministic package %s: sort the keys, restructure as an order-insensitive fold, or annotate the file //colibri:ordered", p.Name)
}

// collectThenSorted recognizes the canonical fix for unordered iteration:
// a range whose body only appends map elements to slices, every one of
// which is passed to a sort call later in the same statement list. The
// intermediate order then never escapes.
func collectThenSorted(rs *ast.RangeStmt, rest []ast.Stmt, info *types.Info) bool {
	collected := map[string]bool{}
	var bodyOK func(s ast.Stmt) bool
	bodyOK = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.AssignStmt:
			// x = append(x, pureArgs...)
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 || s.Tok != token.ASSIGN {
				return false
			}
			id, isIdent := s.Lhs[0].(*ast.Ident)
			if !isIdent {
				return false
			}
			call, isCall := s.Rhs[0].(*ast.CallExpr)
			if !isCall {
				return false
			}
			fn, isIdentFn := call.Fun.(*ast.Ident)
			if !isIdentFn || fn.Name != "append" || len(call.Args) < 2 {
				return false
			}
			if first, isFirst := call.Args[0].(*ast.Ident); !isFirst || first.Name != id.Name {
				return false
			}
			if !exprsSideEffectFree(call.Args[1:], info) {
				return false
			}
			collected[id.Name] = true
			return true
		case *ast.IfStmt:
			if s.Init != nil || !sideEffectFree(s.Cond, info) || s.Else != nil {
				return false
			}
			for _, bs := range s.Body.List {
				if !bodyOK(bs) {
					return false
				}
			}
			return true
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE
		}
		return false
	}
	for _, s := range rs.Body.List {
		if !bodyOK(s) {
			return false
		}
	}
	if len(collected) == 0 {
		return false
	}
	// Every collected slice must be sorted downstream.
	for _, s := range rest {
		ast.Inspect(s, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall || len(call.Args) == 0 {
				return true
			}
			pkgPath, fn := pkgFuncCall(call, info)
			isSort := (pkgPath == "sort" && fn != "Search" && fn != "SearchInts" && fn != "SearchStrings" && fn != "SearchFloat64s") ||
				(pkgPath == "slices" && (fn == "Sort" || fn == "SortFunc" || fn == "SortStableFunc"))
			if !isSort {
				return true
			}
			if arg, isIdent := call.Args[0].(*ast.Ident); isIdent {
				delete(collected, arg.Name)
			}
			return true
		})
	}
	return len(collected) == 0
}

// orderInsensitiveBody reports whether every statement of the range body is
// provably insensitive to iteration order: commutative compound assignments
// (+= *= |= &= ^=), counters (++/--), writes indexed by an expression
// involving the range key (distinct keys → distinct cells), delete from a
// map, min/max folds guarded by a comparison on the folded variable, and
// if/blocks composed of the same. Anything else — append, sends, calls with
// side effects, early returns — is treated as order-sensitive.
func orderInsensitiveBody(rs *ast.RangeStmt, info *types.Info) bool {
	keyIdent, _ := rs.Key.(*ast.Ident)
	var ok func(s ast.Stmt, guard ast.Expr) bool
	ok = func(s ast.Stmt, guard ast.Expr) bool {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			return sideEffectFree(s.X, info)
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN,
				token.AND_ASSIGN, token.XOR_ASSIGN:
				return exprsSideEffectFree(s.Rhs, info)
			case token.DEFINE:
				// Fresh per-iteration locals carry no cross-iteration state.
				return exprsSideEffectFree(s.Rhs, info)
			case token.ASSIGN:
				if !exprsSideEffectFree(s.Rhs, info) {
					return false
				}
				for _, lhs := range s.Lhs {
					if !assignTargetOK(lhs, keyIdent, guard, info) {
						return false
					}
				}
				return true
			}
			return false
		case *ast.ExprStmt:
			// delete(m, k) is order-insensitive (and legal mid-range).
			if call, isCall := s.X.(*ast.CallExpr); isCall {
				if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "delete" {
					return exprsSideEffectFree(call.Args, info)
				}
			}
			return false
		case *ast.IfStmt:
			if s.Init != nil && !ok(s.Init, guard) {
				return false
			}
			if !sideEffectFree(s.Cond, info) {
				return false
			}
			for _, bs := range s.Body.List {
				if !ok(bs, s.Cond) {
					return false
				}
			}
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					for _, bs := range e.List {
						if !ok(bs, s.Cond) {
							return false
						}
					}
				case *ast.IfStmt:
					return ok(e, guard)
				}
			}
			return true
		case *ast.BlockStmt:
			for _, bs := range s.List {
				if !ok(bs, guard) {
					return false
				}
			}
			return true
		case *ast.DeclStmt:
			return true
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE
		}
		return false
	}
	for _, s := range rs.Body.List {
		if !ok(s, nil) {
			return false
		}
	}
	return true
}

// assignTargetOK accepts plain `=` targets that are order-insensitive:
// an index expression whose index mentions the range key (distinct keys hit
// distinct cells), or an identifier that the enclosing if-condition guards
// by comparison (the min/max fold pattern `if v > best { best = v }`).
func assignTargetOK(lhs ast.Expr, key *ast.Ident, guard ast.Expr, info *types.Info) bool {
	if ix, isIndex := lhs.(*ast.IndexExpr); isIndex {
		if key != nil && mentionsObj(ix.Index, info.Defs[key]) {
			return true
		}
		return false
	}
	if id, isIdent := lhs.(*ast.Ident); isIdent && guard != nil {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		return obj != nil && mentionsObj(guard, obj)
	}
	return false
}

// mentionsObj reports whether expr references obj.
func mentionsObj(expr ast.Expr, obj types.Object) bool {
	if obj == nil || expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, isIdent := n.(*ast.Ident); isIdent {
			// mentionsObj is called with info from the enclosing check; use
			// name match as a fallback when resolution is unavailable.
			if id.Name == obj.Name() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sideEffectFree reports whether evaluating expr cannot mutate state:
// literals, identifiers, selectors, index/arithmetic/comparison expressions,
// type conversions, and calls to the pure builtins len/cap/min/max/abs.
func sideEffectFree(expr ast.Expr, info *types.Info) bool {
	pure := true
	ast.Inspect(expr, func(n ast.Node) bool {
		if !pure {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// Type conversions (float64(x), IfID(i), MyT(v)) are pure.
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true
			}
			id, isIdent := n.Fun.(*ast.Ident)
			if !isIdent {
				pure = false
				return false
			}
			switch id.Name {
			case "len", "cap", "min", "max":
				return true
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // channel receive
				pure = false
				return false
			}
		}
		return true
	})
	return pure
}

func exprsSideEffectFree(exprs []ast.Expr, info *types.Info) bool {
	for _, e := range exprs {
		if !sideEffectFree(e, info) {
			return false
		}
	}
	return true
}
