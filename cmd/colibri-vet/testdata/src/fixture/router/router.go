// Package router is the nomalloc fixture: ProcessBatch reintroduces the
// acceptance checklist's seeded bug (a per-batch heap allocation inside an
// annotated hot function), Clean shows the conforming shape, and Amortized
// the documented growth path.
package router

// ProcessBatch allocates its result on every call: finding.
//
//colibri:nomalloc
func ProcessBatch(pkts [][]byte) []int {
	out := make([]int, len(pkts))
	for i, p := range pkts {
		out[i] = len(p)
	}
	return out
}

// Clean writes into caller-owned memory: clean.
//
//colibri:nomalloc
func Clean(pkts [][]byte, out []int) {
	for i, p := range pkts {
		out[i] = len(p)
	}
}

// Amortized documents a permitted growth allocation: suppressed.
//
//colibri:nomalloc
func Amortized(buf []byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n) //colibri:allow(nomalloc) — fixture: amortized growth
	}
	return buf[:n]
}
