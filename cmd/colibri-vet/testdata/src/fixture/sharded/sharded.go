// Package sharded is the multi-core data-plane fixture: the RSS
// scatter/gather front end and the cross-shard merge reintroduce the
// sharding work's seeded bug classes — a per-batch heap allocation on the
// annotated partition path and a merge that leaks its lock — next to the
// conforming shapes (reused scratch, snapshot-then-export) and the
// documented amortized-growth suppression.
package sharded

import (
	"sync"

	"fixture/telemetry"
)

// Shard is one core-local pipeline's scatter/gather scratch.
type Shard struct {
	pkts     [][]byte
	idx      []int32
	verdicts []int
}

// Plane is the sharded front end plus its merge-side state.
type Plane struct {
	mu     sync.Mutex
	shards []*Shard
	merged map[uint64]uint32
}

// Partition allocates fresh per-shard slices on every batch: finding.
//
//colibri:nomalloc
func (p *Plane) Partition(pkts [][]byte) {
	for _, sh := range p.shards {
		sh.pkts = make([][]byte, 0, len(pkts))
	}
	for i, b := range pkts {
		sh := p.shards[i%len(p.shards)]
		sh.pkts = append(sh.pkts, b)
		sh.idx = append(sh.idx, int32(i))
	}
}

// PartitionReused resets and reuses each shard's scratch: clean.
//
//colibri:nomalloc
func (p *Plane) PartitionReused(pkts [][]byte) {
	for _, sh := range p.shards {
		sh.pkts = sh.pkts[:0]
		sh.idx = sh.idx[:0]
	}
	for i, b := range pkts {
		sh := p.shards[i%len(p.shards)]
		sh.pkts = append(sh.pkts, b)
		sh.idx = append(sh.idx, int32(i))
	}
}

// GrowVerdicts documents the permitted amortized growth of a shard's
// verdict scratch: suppressed.
//
//colibri:nomalloc
func (sh *Shard) GrowVerdicts(n int) {
	if cap(sh.verdicts) < n {
		sh.verdicts = make([]int, n) //colibri:allow(nomalloc) — fixture: amortized scratch growth
	}
	sh.verdicts = sh.verdicts[:n]
}

// MergeLeakOnEmpty returns with p.mu held when there is nothing to merge:
// finding.
func (p *Plane) MergeLeakOnEmpty(entries map[uint64]uint32) int {
	p.mu.Lock()
	if len(entries) == 0 {
		return 0
	}
	for k, v := range entries {
		p.merged[k] = v
	}
	p.mu.Unlock()
	return len(p.merged)
}

// MergeExportUnderLock renders telemetry inside the merge's critical
// section: finding.
func (p *Plane) MergeExportUnderLock(reg *telemetry.Registry) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return telemetry.WriteText(reg)
}

// MergeSnapshotOutside merges under the lock and exports after releasing
// it: clean.
func (p *Plane) MergeSnapshotOutside(entries map[uint64]uint32, reg *telemetry.Registry) map[string]int64 {
	p.mu.Lock()
	for k, v := range entries {
		p.merged[k] = v
	}
	p.mu.Unlock()
	return reg.Snapshot()
}
