// Package tel is the telemetry-discipline fixture: names off the
// component.metric[_unit] convention, dynamic names, kind conflicts and
// duplicate registrations must be flagged; conforming one-time
// registrations must not.
package tel

import "fixture/telemetry"

// Wire registers this fixture's instruments.
func Wire(reg *telemetry.Registry, dyn string) {
	reg.Counter("tel.good_total")
	reg.Counter("BadName")
	reg.Counter(dyn)
	reg.Counter(dyn) //colibri:allow(telemetry) — fixture: bounded enum suffix
	reg.Gauge("tel.depth")
	reg.Counter("tel.depth")
	reg.Histogram("tel.lat_ns")
}

// WireAgain re-registers a series owned by Wire: finding.
func WireAgain(reg *telemetry.Registry) {
	reg.Histogram("tel.lat_ns")
}
