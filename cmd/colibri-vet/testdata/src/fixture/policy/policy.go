// Package policy is the acceptance-checklist fixture for the determinism
// check over the reservation-model layer: an audit assembled in map-range
// order and an expiry stamped off the wall clock — the two seeded bug
// classes a policy implementation must not reintroduce.
package policy

import "time"

// Audit is one per-AS conservation row.
type Audit struct {
	IA   uint64
	Peak int64
}

// Snapshot returns the rows in map order: finding.
func Snapshot(planes map[uint64]int64) []Audit {
	var out []Audit
	for ia, peak := range planes {
		out = append(out, Audit{IA: ia, Peak: peak})
	}
	return out
}

// Expiry stamps a lifetime off the wall clock instead of the injected
// clock seam: finding.
func Expiry() uint32 {
	return uint32(time.Now().Unix()) + 16
}

// Prune deletes lapsed flows keyed by the range key: order-insensitive,
// no finding.
func Prune(flows map[uint64]uint32, now uint32) {
	for id, expT := range flows {
		if expT <= now {
			delete(flows, id)
		}
	}
}
