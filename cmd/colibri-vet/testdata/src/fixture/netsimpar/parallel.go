// Package netsim (directory netsimpar) is the parallel-executor determinism
// fixture: handlers that netsim's parallel engine runs on goroutine workers
// must not wait on the wall clock or race multi-channel selects. The bad
// shapes below must be flagged, the single-receive worker loop must not.
package netsim

import "time"

// BadWorkerClock reads the wall clock inside a goroutine-spawned handler:
// finding (time.Now).
func BadWorkerClock(done chan int64) {
	go func() {
		done <- time.Now().UnixNano()
	}()
}

// BadSleep waits on a real duration between events: finding (time.Sleep).
func BadSleep() {
	time.Sleep(time.Millisecond)
}

// BadTimerArm arms a wall-clock timer: finding (time.After).
func BadTimerArm(work chan func()) {
	go func() {
		<-time.After(time.Second)
		<-work
	}()
}

// BadMultiSelect races two ready channels — the runtime picks the winner at
// random: finding (select over 2 channels).
func BadMultiSelect(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return -v
	}
}

// GoodWorkerLoop is the deterministic worker-pool shape the parallel engine
// uses — one blocking receive per goroutine: clean.
func GoodWorkerLoop(work chan func()) {
	go func() {
		for fn := range work {
			fn()
		}
	}()
}

// GoodSingleSelect is a conditional receive (one comm clause plus default):
// clean.
func GoodSingleSelect(work chan func()) bool {
	select {
	case fn := <-work:
		fn()
		return true
	default:
		return false
	}
}

// SuppressedSleep documents an audited real-time wait: suppressed.
func SuppressedSleep() {
	time.Sleep(time.Microsecond) //colibri:allow(determinism) — fixture: audited wait
}
