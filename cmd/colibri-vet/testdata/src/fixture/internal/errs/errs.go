// Package errs is the errcheck fixture; its import path contains /internal/
// so dropped errors are findings, while handled, explicitly discarded and
// in-memory-sink cases stay clean.
package errs

import (
	"fmt"
	"strings"
)

func mayFail() error { return nil }

func produce() (int, error) { return 0, nil }

// Bad drops two errors: two findings.
func Bad() {
	mayFail()
	go mayFail()
}

// Good consumes or explicitly discards every error: clean.
func Good() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail()
	n, err := produce()
	_ = n
	return err
}

// BuilderSink is excluded by policy (Fprintf into an in-memory sink): clean.
func BuilderSink() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1)
	return b.String()
}

// Suppressed documents a deliberate fire-and-forget: suppressed.
func Suppressed() {
	mayFail() //colibri:allow(errors) — fixture: fire-and-forget probe
}
