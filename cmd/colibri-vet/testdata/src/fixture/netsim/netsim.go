// Package netsim is the determinism fixture: its name places it in the
// analyzer's deterministic set, so the wall-clock reads, global randomness
// and order-sensitive map iteration below must be flagged, while the seeded
// and order-insensitive shapes must not.
package netsim

import (
	"math/rand"
	"sort"
	"time"
)

// BadNow reads the wall clock: finding.
func BadNow() int64 {
	return time.Now().UnixNano()
}

// BadGlobalRand draws from the process-global source: finding.
func BadGlobalRand() int {
	return rand.Intn(6)
}

// BadRange leaks map iteration order into the returned slice: finding.
func BadRange(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// GoodSeeded uses an explicitly seeded generator: clean.
func GoodSeeded() int {
	rng := rand.New(rand.NewSource(1))
	return rng.Intn(6)
}

// GoodFold accumulates order-insensitively: clean.
func GoodFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodCollectSorted sorts the collected keys before they escape: clean.
func GoodCollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SuppressedNow documents an audited wall-clock read: suppressed.
func SuppressedNow() int64 {
	return time.Now().UnixNano() //colibri:allow(determinism) — fixture: audited read
}
