//colibri:ordered — fixture: this file asserts its map ranges are audited.

package netsim

// OptedOut ranges a map in a file carrying //colibri:ordered: clean.
func OptedOut(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
