// Package atomics is the mixed-access fixture: legacy sync/atomic targets,
// plain accesses of the same word, and second writers of single-writer
// fields must be flagged; constructors, lock-guarded sections and typed
// atomics with one writer must not.
package atomics

import (
	"sync"
	"sync/atomic"
)

// C mixes atomic and plain access on n.
type C struct {
	mu sync.Mutex
	n  uint64
	// owned is written only by Advance: the annotation holds — clean.
	owned atomic.Uint64 //colibri:singlewriter
	// shared is annotated single-writer but written by two functions: the
	// second writer is a finding.
	shared atomic.Int64 //colibri:singlewriter
}

// NewC initializes everything plainly before publication: clean.
func NewC() *C {
	c := &C{}
	c.n = 1
	c.owned.Store(0)
	c.shared.Store(0)
	return c
}

// Bump goes through the legacy package-level atomics: raw-target migration
// finding.
func (c *C) Bump() {
	atomic.AddUint64(&c.n, 1)
}

// Read reads n plainly while Bump updates it atomically: mixed-access
// finding.
func (c *C) Read() uint64 {
	return c.n
}

// Guarded reads n under the mutex: clean (lock-held allowance).
func (c *C) Guarded() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// SuppressedPlain tolerates a stale read by contract: suppressed.
func (c *C) SuppressedPlain() uint64 {
	return c.n //colibri:allow(atomics) — fixture: stale read acceptable
}

// Advance is owned's one writer: clean.
func (c *C) Advance() {
	c.owned.Add(1)
}

// WriteA is shared's first writer (wins the annotation).
func (c *C) WriteA() {
	c.shared.Store(1)
}

// WriteB is a second writing function: single-writer finding.
func (c *C) WriteB() {
	c.shared.Store(2)
}
