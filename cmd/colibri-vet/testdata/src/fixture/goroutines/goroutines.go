// Package goroutines is the fan-out-discipline fixture: unjoined go
// statements and channels without explicit capacity must be flagged;
// WaitGroup-joined spawns, result-collecting sends, channel-draining
// workers, bounded makes and annotated rendezvous channels must not.
package goroutines

import "sync"

// FireAndForget spawns an unjoined literal: finding.
func FireAndForget(n *int) {
	go func() {
		_ = n
	}()
}

// Joined signals a WaitGroup: clean.
func Joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Collected sends its result on a bounded channel: clean.
func Collected() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	return <-ch
}

// Worker drains a channel; the owner joins by closing it: clean.
func Worker(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// leak never signals anything: spawning it is a finding.
func leak() {}

// SpawnNamed spawns the unjoined named function: finding.
func SpawnNamed() {
	go leak()
}

// SpawnOpaque spawns a function value the analyzer can't inspect: finding.
func SpawnOpaque(fn func()) {
	go fn()
}

// SuppressedSpawn is joined by process lifetime by contract: suppressed.
func SuppressedSpawn() {
	go leak() //colibri:allow(goroutines) — fixture: joined by process lifetime
}

// Unbounded makes a channel without a capacity: finding.
func Unbounded() chan int {
	return make(chan int)
}

// Bounded states its capacity: clean.
func Bounded() chan int {
	return make(chan int, 8)
}

// Rendezvous documents why blocking is the design: suppressed.
func Rendezvous() chan int {
	return make(chan int) //colibri:unbounded(fixture: rendezvous handoff is the backpressure)
}
