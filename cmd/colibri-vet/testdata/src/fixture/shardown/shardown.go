// Package shardown is the shard-ownership fixture: owned fields touched
// outside the ownership domain, aliased out via returns or channel sends,
// or captured by escaping closures must be flagged; the holder's dispatch
// and reconciliation paths, the owned type's own methods and constructors
// must not.
package shardown

// notAStruct carries the annotation on a non-struct type: finding.
//
//colibri:shardowned
type notAStruct int

// shard is one shard's private state.
//
//colibri:shardowned
type shard struct {
	counts []uint64
	buf    []byte
	n      int
}

// reset is the shard's own method: clean.
func (s *shard) reset() {
	s.n = 0
	s.buf = s.buf[:0]
}

// Front is the holder: it dispatches over its shards.
type Front struct {
	shards []*shard
}

// NewFront touches owned fields pre-publication: clean.
func NewFront(n int) *Front {
	f := &Front{shards: make([]*shard, n)}
	for i := range f.shards {
		f.shards[i] = &shard{counts: make([]uint64, 4)}
	}
	return f
}

// Process is a holder method: clean containment.
func (f *Front) Process(i int) {
	sh := f.shards[i]
	sh.n++
	sh.counts[0]++
	sh.reset()
}

// Counts is a reconciliation point: handing owned state out is allowed.
func (f *Front) Counts(i int) []uint64 {
	return f.shards[i].counts
}

// Leak returns an owned reference field outside reconciliation: finding.
func (f *Front) Leak(i int) []byte {
	return f.shards[i].buf
}

// Publish sends owned state on a channel: finding.
func (f *Front) Publish(ch chan []uint64, i int) {
	ch <- f.shards[i].counts
}

// Spawn captures owned state in a goroutine closure: finding.
func (f *Front) Spawn(i int) {
	sh := f.shards[i]
	go func() {
		sh.counts[0]++
	}()
}

// Peek touches owned state from outside the ownership domain: finding.
func Peek(sh *shard) int {
	return sh.n
}

// Audit reads owned state for debugging by contract: suppressed.
func Audit(sh *shard) int {
	return sh.n //colibri:allow(shardown) — fixture: read-only debug audit
}
