// Package cserv is the acceptance-checklist fixture for the determinism
// check's map rule: an unsorted map range whose order escapes into the
// result, exactly the seeded bug class the analyzer must catch.
package cserv

// Chains returns offers in map order: finding.
func Chains(offers map[uint64]string) []string {
	var out []string
	for _, o := range offers {
		out = append(out, o)
	}
	return out
}
