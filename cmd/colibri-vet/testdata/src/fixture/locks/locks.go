// Package locks is the lock-discipline fixture: early returns and implicit
// returns with a mutex held, and exporter calls inside critical sections,
// must be flagged; deferred and per-path releases must not.
package locks

import (
	"sync"

	"fixture/telemetry"
)

// S guards a counter.
type S struct {
	mu sync.Mutex
	n  int
}

// LeakOnEarlyReturn returns with s.mu held on the positive path: finding.
func (s *S) LeakOnEarlyReturn(x int) int {
	s.mu.Lock()
	if x > 0 {
		return x
	}
	s.mu.Unlock()
	return 0
}

// ForgetsUnlock falls off the end with s.mu held: finding.
func (s *S) ForgetsUnlock() {
	s.mu.Lock()
	s.n++
}

// ExportUnderLock renders telemetry inside the critical section: finding.
func (s *S) ExportUnderLock(reg *telemetry.Registry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return telemetry.WriteText(reg)
}

// DeferredUnlock releases on every path: clean.
func (s *S) DeferredUnlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}

// PerPathUnlock releases explicitly on both paths: clean.
func (s *S) PerPathUnlock(x int) int {
	s.mu.Lock()
	if x > 0 {
		s.mu.Unlock()
		return x
	}
	s.mu.Unlock()
	return 0
}

// SnapshotOutside exports after releasing the lock: clean.
func (s *S) SnapshotOutside(reg *telemetry.Registry) map[string]int64 {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return reg.Snapshot()
}

// SuppressedLeak hands lock ownership to the caller by contract: suppressed.
func (s *S) SuppressedLeak() {
	s.mu.Lock()
	return //colibri:allow(locks) — fixture: ownership handed to caller
}
