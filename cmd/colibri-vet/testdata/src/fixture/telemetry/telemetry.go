// Package telemetry is a miniature replica of the real registry API — just
// enough surface for the lock and naming fixtures to resolve the same way
// the real package does (the checks match Registry methods and Write*
// functions structurally, by package base name and type name).
package telemetry

// Registry hands out named instruments.
type Registry struct{}

// Counter is a monotonic series.
type Counter struct{}

// Gauge is a point-in-time series.
type Gauge struct{}

// Histogram is a distribution series.
type Histogram struct{}

// Tracer records lifecycle events.
type Tracer struct{}

// Counter returns the counter registered under name.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram returns the histogram registered under name.
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }

// Tracer returns the tracer registered under name with the given capacity.
func (r *Registry) Tracer(name string, capacity int) *Tracer { return &Tracer{} }

// Snapshot renders the registry's current state.
func (r *Registry) Snapshot() map[string]int64 { return nil }

// WriteText renders a registry in the text exporter format.
func WriteText(r *Registry) error { return nil }
