// Package restree is the fixture for the reservation-tree contract: the
// package name places it in the analyzer's deterministic set (the real
// internal/restree backs admission decisions, so any wall-clock read or
// unordered iteration would make grants irreproducible), and its query
// paths carry //colibri:nomalloc. Each Bad* function reintroduces one
// seeded violation; the Good* shapes must stay clean.
package restree

import (
	"sort"
	"time"
)

// Ledger is a miniature of the real demand ledger: a demand value per
// reservation key plus an epoch-indexed profile.
type Ledger struct {
	entries map[string]int64
	profile []int64
}

// BadAdvance derives the current epoch from the wall clock: finding.
func (l *Ledger) BadAdvance() int64 {
	return time.Now().Unix() / 4
}

// BadSnapshot leaks map iteration order into the returned series: finding.
func (l *Ledger) BadSnapshot() []int64 {
	var out []int64
	for _, bw := range l.entries {
		out = append(out, bw)
	}
	return out
}

// BadMax allocates a scratch copy inside an annotated query: finding.
//
//colibri:nomalloc
func (l *Ledger) BadMax(from, to int) int64 {
	window := make([]int64, to-from)
	copy(window, l.profile[from:to])
	var m int64
	for _, d := range window {
		if d > m {
			m = d
		}
	}
	return m
}

// GoodMax scans the profile in place: clean.
//
//colibri:nomalloc
func (l *Ledger) GoodMax(from, to int) int64 {
	var m int64
	for _, d := range l.profile[from:to] {
		if d > m {
			m = d
		}
	}
	return m
}

// GoodTotal folds the entries order-insensitively: clean.
func (l *Ledger) GoodTotal() int64 {
	var total int64
	for _, bw := range l.entries {
		total += bw
	}
	return total
}

// GoodKeys sorts collected keys before they escape: clean.
func (l *Ledger) GoodKeys() []string {
	keys := make([]string, 0, len(l.entries))
	for k := range l.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
