// nomalloc.go — check "nomalloc": functions annotated //colibri:nomalloc
// (the batch pipeline and crypto kernels whose per-packet cost the paper's
// Figs. 5–6 measure) must not heap-allocate. The check drives the real
// compiler — `go build -gcflags=-m` on each package containing annotated
// functions — and attributes every "escapes to heap" / "moved to heap"
// diagnostic to the annotated function whose line range contains it. This
// is ground truth, not a syntactic guess: whatever the escape analysis of
// the toolchain that ships the binary decides is what the check enforces.
//
// Amortized growth paths (a make() that reuses capacity in steady state)
// are the intended use of a per-line //colibri:allow(nomalloc).
package main

import (
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

const checkNomalloc = "nomalloc"

type nomallocCheck struct {
	// goTool is the go command to invoke; tests may stub it. Empty means
	// "go" from PATH.
	goTool string
}

// escapeRe matches compiler diagnostics like
//
//	internal/router/router.go:123:45: make([]byte, n) escapes to heap
//	internal/gateway/gateway.go:10:2: moved to heap: x
var escapeRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// funcRange is an annotated function's file span.
type funcRange struct {
	file      string // absolute path
	name      string
	startLine int
	endLine   int
	pos       map[int]bool // lines already reported, to dedupe multi-notes
}

func (c *nomallocCheck) Run(p *Pkg, r *Reporter) {
	var ranges []*funcRange
	for _, f := range p.Files {
		for _, fd := range nomallocFuncs(f) {
			start := r.fset.Position(fd.Pos())
			end := r.fset.Position(fd.End())
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				name = recvTypeName(fd.Recv.List[0].Type) + "." + name
			}
			ranges = append(ranges, &funcRange{
				file:      start.Filename,
				name:      name,
				startLine: start.Line,
				endLine:   end.Line,
				pos:       map[int]bool{},
			})
		}
	}
	if len(ranges) == 0 {
		return
	}
	out, err := c.escapeOutput(r.modRoot, p.ImportPath)
	if err != nil {
		r.Report(p.Files[0].Pos(), checkNomalloc,
			"cannot run escape analysis for %s: %v", p.ImportPath, err)
		return
	}
	for _, line := range strings.Split(out, "\n") {
		m := escapeRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(r.modRoot, filepath.FromSlash(file))
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		msg := m[4]
		for _, fr := range ranges {
			if fr.file != file || lineNo < fr.startLine || lineNo > fr.endLine || fr.pos[lineNo] {
				continue
			}
			fr.pos[lineNo] = true
			r.reportAt(file, lineNo, col, checkNomalloc,
				"heap allocation in //colibri:nomalloc %s: %s", fr.name, msg)
		}
	}
}

// escapeOutput rebuilds the package with -gcflags=-m and returns the
// compiler's escape-analysis notes. -gcflags applies only to the packages
// named on the command line, which also forces them to rebuild (cached
// builds print nothing).
func (c *nomallocCheck) escapeOutput(modRoot, importPath string) (string, error) {
	tool := c.goTool
	if tool == "" {
		tool = "go"
	}
	cmd := exec.Command(tool, "build", "-gcflags=-m", importPath)
	cmd.Dir = modRoot
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("%v: %s", err, firstLine(string(out)))
	}
	return string(out), nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	}
	return "?"
}
