package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	File    string `json:"file"` // module-root-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Reporter collects findings, applies per-line suppressions, and renders
// text or JSON output.
type Reporter struct {
	modRoot  string
	fset     *token.FileSet
	suppress *SuppressionIndex
	findings []Finding
	// suppressed counts findings dropped by //colibri:allow for the summary.
	suppressed int
	// baselined counts findings filtered by a committed baseline report.
	baselined int
}

func NewReporter(modRoot string, fset *token.FileSet, sup *SuppressionIndex) *Reporter {
	return &Reporter{modRoot: modRoot, fset: fset, suppress: sup}
}

// Report files a finding at pos unless the line carries a matching
// //colibri:allow(check) suppression.
func (r *Reporter) Report(pos token.Pos, check, format string, args ...any) {
	p := r.fset.Position(pos)
	if r.suppress.Allowed(p.Filename, p.Line, check) {
		r.suppressed++
		return
	}
	rel, err := filepath.Rel(r.modRoot, p.Filename)
	if err != nil {
		rel = p.Filename
	}
	r.findings = append(r.findings, Finding{
		File:    filepath.ToSlash(rel),
		Line:    p.Line,
		Col:     p.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// reportAt files a finding at an explicit file:line:col (used by checks
// whose evidence comes from compiler output rather than AST positions),
// honoring the same per-line suppressions.
func (r *Reporter) reportAt(file string, line, col int, check, format string, args ...any) {
	if r.suppress.Allowed(file, line, check) {
		r.suppressed++
		return
	}
	rel, err := filepath.Rel(r.modRoot, file)
	if err != nil {
		rel = file
	}
	r.findings = append(r.findings, Finding{
		File:    filepath.ToSlash(rel),
		Line:    line,
		Col:     col,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// PosString renders a position module-root-relative, the form findings
// embed when a message references a second location (lock acquisition
// sites, first registrations) — keeps output machine-stable across
// checkouts and golden-testable.
func (r *Reporter) PosString(pos token.Pos) string {
	p := r.fset.Position(pos)
	rel, err := filepath.Rel(r.modRoot, p.Filename)
	if err != nil {
		rel = p.Filename
	}
	return fmt.Sprintf("%s:%d:%d", filepath.ToSlash(rel), p.Line, p.Column)
}

// Findings returns the collected findings sorted by file, line, column,
// check — a stable order so output is diffable and golden-testable.
func (r *Reporter) Findings() []Finding {
	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i], r.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return r.findings
}

// WriteText prints one finding per line in file:line:col: [check] message form.
func (r *Reporter) WriteText(w io.Writer) {
	for _, f := range r.Findings() {
		fmt.Fprintln(w, f.String())
	}
}

// ApplyBaseline removes findings matching the committed baseline set and
// returns how many were filtered. Matching ignores line/col (annotated code
// drifts) and keys on file, check and message as a multiset, so a second
// identical finding in the same file is still new.
func (r *Reporter) ApplyBaseline(base []Finding) int {
	accepted := map[string]int{}
	key := func(f Finding) string { return f.File + "\x00" + f.Check + "\x00" + f.Message }
	for _, f := range base {
		accepted[key(f)]++
	}
	kept := r.findings[:0]
	filtered := 0
	for _, f := range r.findings {
		if accepted[key(f)] > 0 {
			accepted[key(f)]--
			filtered++
			continue
		}
		kept = append(kept, f)
	}
	r.findings = kept
	r.baselined = filtered
	return filtered
}

// jsonReport is the CI-facing envelope: machine-readable findings plus the
// counts a gate needs to fail fast.
type jsonReport struct {
	Findings   []Finding `json:"findings"`
	Count      int       `json:"count"`
	Suppressed int       `json:"suppressed"`
	Baselined  int       `json:"baselined,omitempty"`
}

// WriteJSON renders the findings as a JSON object for CI consumption.
func (r *Reporter) WriteJSON(w io.Writer) error {
	fs := r.Findings()
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Findings: fs, Count: len(fs), Suppressed: r.suppressed, Baselined: r.baselined})
}
