// suppress.go implements the annotation grammar shared by all checks:
//
//	//colibri:allow(check[,check...])  — suppress findings of the named
//	    checks on this line; when the comment stands alone on its line, it
//	    suppresses the line below instead (for lines too long to annotate).
//	//colibri:ordered                  — file-level opt-out of the
//	    map-iteration determinism rule (the file's author asserts every map
//	    range in it is order-insensitive or intentionally unordered).
//	//colibri:nomalloc                 — function annotation: the function
//	    body must not heap-allocate (verified against escape analysis).
//	//colibri:singlewriter             — field annotation (atomics check):
//	    the atomic field is written from exactly one function; writes from
//	    a second function are findings.
//	//colibri:shardowned               — struct-type annotation (shardown
//	    check): fields are shard-private and may only be touched by the
//	    owning/holder type's methods, reconciliation points and
//	    constructors, and must not alias out.
//	//colibri:unbounded(reason)        — channel-make annotation (goroutines
//	    check): this channel intentionally has no explicit capacity bound
//	    (a rendezvous channel); the reason documents why backpressure by
//	    blocking is the design.
package main

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

var allowRe = regexp.MustCompile(`//colibri:allow\(([a-z, -]+)\)`)

// unboundedRe matches the goroutines check's channel annotation. The reason
// is mandatory: an empty pair of parentheses does not suppress.
var unboundedRe = regexp.MustCompile(`//colibri:unbounded\(([^)]+)\)`)

// SuppressionIndex records, per file, the lines carrying allow-pragmas and
// the files opting out of ordering.
type SuppressionIndex struct {
	// allow maps filename -> line -> set of suppressed check names.
	allow map[string]map[int]map[string]bool
	// ordered holds filenames with a //colibri:ordered pragma.
	ordered map[string]bool
}

func NewSuppressionIndex() *SuppressionIndex {
	return &SuppressionIndex{
		allow:   map[string]map[int]map[string]bool{},
		ordered: map[string]bool{},
	}
}

// AddFile scans one parsed file's comments into the index.
func (s *SuppressionIndex) AddFile(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			pos := fset.Position(c.Pos())
			text := c.Text
			if strings.Contains(text, "//colibri:ordered") {
				s.ordered[pos.Filename] = true
			}
			var names []string
			if m := allowRe.FindStringSubmatch(text); m != nil {
				for _, name := range strings.Split(m[1], ",") {
					names = append(names, strings.TrimSpace(name))
				}
			}
			// //colibri:unbounded(reason) is the goroutines check's channel
			// annotation: a reasoned opt-out of the explicit-capacity rule,
			// indexed as an allow of that check on the make's line.
			if unboundedRe.MatchString(text) {
				names = append(names, checkGoroutines)
			}
			if len(names) == 0 {
				continue
			}
			line := pos.Line
			// A comment alone on its line guards the following line.
			if pos.Column == 1 || standsAlone(fset, f, c) {
				line++
			}
			fm := s.allow[pos.Filename]
			if fm == nil {
				fm = map[int]map[string]bool{}
				s.allow[pos.Filename] = fm
			}
			cm := fm[line]
			if cm == nil {
				cm = map[string]bool{}
				fm[line] = cm
			}
			for _, name := range names {
				cm[name] = true
			}
		}
	}
}

// standsAlone reports whether comment c is the only token on its line, by
// checking that no declaration or statement of the file starts on that line.
// (Column-1 comments are handled before calling this; here we catch indented
// stand-alone comments.)
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		// Any non-comment node starting or ending on the comment's line
		// means the comment trails code.
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		s, e := fset.Position(n.Pos()), fset.Position(n.End())
		if s.Line <= line && line <= e.Line {
			// The node spans the line; only leaf nodes on exactly this line
			// prove code shares it.
			if s.Line == line || e.Line == line {
				alone = false
				return false
			}
		}
		return true
	})
	return alone
}

// Allowed reports whether check findings on file:line are suppressed.
func (s *SuppressionIndex) Allowed(file string, line int, check string) bool {
	if fm, ok := s.allow[file]; ok {
		if cm, ok := fm[line]; ok {
			return cm[check] || cm["all"]
		}
	}
	return false
}

// Ordered reports whether the file opted out of map-iteration ordering.
func (s *SuppressionIndex) Ordered(file string) bool { return s.ordered[file] }

// nomallocFuncs returns the functions in f annotated //colibri:nomalloc,
// keyed by the annotation appearing in the doc comment group directly above
// the declaration (or anywhere in its doc).
func nomallocFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if strings.Contains(c.Text, "//colibri:nomalloc") {
				out = append(out, fd)
				break
			}
		}
	}
	return out
}
