// atomics.go — check "atomics": the conservation argument of the sharded
// data/control planes (DESIGN.md §§7–8) rests on counters and flags that are
// updated concurrently yet must never tear or lose an update. Three rules,
// reconciled module-wide after the last package is analyzed:
//
//  1. No mixed access: a struct field or package-level variable that is
//     accessed through the legacy sync/atomic functions (atomic.AddUint64,
//     atomic.LoadInt64, ...) anywhere must be accessed atomically
//     everywhere. A plain read or write of the same target is a finding
//     unless it happens in a constructor before publication (a function
//     named New*/new*/init) or inside a critical section (lexically between
//     a mutex Lock and its Unlock in the same function — conservative, but
//     the tree's locked sections are simple enough for it to hold).
//
//  2. Migrate raw targets: every legacy atomic call on an addressable
//     int32/int64/uint32/uint64/pointer target is itself a finding — typed
//     atomic.Int64/Uint64/Bool/Pointer fields make rule 1 unviolable by
//     construction (a plain access no longer compiles), which is why the
//     tree migrated to them. The finding keeps raw targets from creeping
//     back in.
//
//  3. Single writer: a field annotated //colibri:singlewriter may receive
//     atomic writes (Store/Add/Swap/CompareAndSwap/Or/And on a typed
//     atomic, or a legacy atomic write) from at most one function;
//     constructors are exempt (pre-publication initialization). The
//     annotation turns a comment like "written only by the owning worker"
//     into an enforced invariant — e.g. the σ-cache hit counters that
//     Merge reads from another goroutine.
package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

const checkAtomics = "atomics"

// legacyAtomicWrite names the sync/atomic package-level functions that
// mutate their target; the remaining legacy functions (Load*) only read.
var legacyAtomicWrite = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// atomicTypeWrite names the mutating methods of the typed atomics
// (atomic.Int64, atomic.Uint64, atomic.Bool, atomic.Pointer, atomic.Value).
var atomicTypeWrite = map[string]bool{
	"Store": true, "Add": true, "Swap": true, "CompareAndSwap": true,
	"Or": true, "And": true,
}

// atomicWriter is one function observed performing an atomic write.
type atomicWriter struct {
	fn  string // package-path-qualified function or method name
	pos token.Pos
}

type atomicsCheck struct {
	pkgs []*Pkg
}

// Run only collects: all three rules need the module-wide view (an exported
// field's plain access or second writer can live in another package).
func (c *atomicsCheck) Run(p *Pkg, r *Reporter) { c.pkgs = append(c.pkgs, p) }

// Finish reconciles across all analyzed packages.
func (c *atomicsCheck) Finish(r *Reporter) {
	// targets: objects (fields / package vars) used as &target of a legacy
	// atomic call, mapped to one representative call position.
	targets := map[types.Object]token.Pos{}
	// atomicOperands: identifier uses that ARE the atomic access itself,
	// excluded from the plain-access scan.
	atomicOperands := map[*ast.Ident]bool{}
	// singleWriter: annotated field/var objects mapped to their writers.
	singleWriter := map[types.Object][]atomicWriter{}
	annotated := map[types.Object]bool{}

	for _, p := range c.pkgs {
		for _, f := range p.Files {
			c.collectAnnotated(f, p, annotated)
		}
	}

	for _, p := range c.pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fnName := qualifiedFuncName(p, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					// Legacy package-level atomics: atomic.Fn(&target, ...).
					if pkgPath, fn := pkgFuncCall(call, p.Info); pkgPath == "sync/atomic" {
						obj := addrOperandObj(call, p.Info, atomicOperands)
						if obj != nil {
							if _, seen := targets[obj]; !seen {
								targets[obj] = call.Pos()
							}
							r.Report(call.Pos(), checkAtomics,
								"raw sync/atomic.%s on %s: migrate to a typed atomic.%s field so a plain access cannot compile",
								fn, obj.Name(), typedAtomicFor(obj.Type()))
							if legacyAtomicWrite[fn] && annotated[obj] && !isConstructorName(fd.Name.Name) {
								singleWriter[obj] = append(singleWriter[obj], atomicWriter{fn: fnName, pos: call.Pos()})
							}
						}
						return true
					}
					// Typed atomics: target.Store(...) / .Add(...) / ...
					if obj, method := typedAtomicCall(call, p.Info); obj != nil {
						if atomicTypeWrite[method] && annotated[obj] && !isConstructorName(fd.Name.Name) {
							singleWriter[obj] = append(singleWriter[obj], atomicWriter{fn: fnName, pos: call.Pos()})
						}
					}
					return true
				})
			}
		}
	}

	// Rule 1: plain accesses of legacy atomic targets.
	for _, p := range c.pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if isConstructorName(fd.Name.Name) {
					continue // pre-publication initialization
				}
				sections := lockSections(fd, p, r.fset)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok || atomicOperands[id] {
						return true
					}
					obj := p.Info.Uses[id]
					if obj == nil {
						return true
					}
					atomicPos, isTarget := targets[obj]
					if !isTarget {
						return true
					}
					if sections.holds(r.fset.Position(id.Pos()).Line) {
						return true // guarded by a mutex held at this point
					}
					r.Report(id.Pos(), checkAtomics,
						"plain access of %s, which is accessed atomically at %s: mixed atomic/plain access tears — go through sync/atomic everywhere (or hold the guarding lock at every access site)",
						obj.Name(), r.PosString(atomicPos))
					return true
				})
			}
		}
	}

	// Rule 3: more than one writing function for a //colibri:singlewriter
	// field. Writers are deduplicated per function and reported in a stable
	// order (first writer by position wins the annotation).
	var annObjs []types.Object
	for obj := range singleWriter {
		annObjs = append(annObjs, obj)
	}
	sort.Slice(annObjs, func(i, j int) bool { return annObjs[i].Pos() < annObjs[j].Pos() })
	for _, obj := range annObjs {
		writers := singleWriter[obj]
		sort.Slice(writers, func(i, j int) bool { return writers[i].pos < writers[j].pos })
		first := writers[0]
		for _, w := range writers[1:] {
			if w.fn == first.fn {
				continue
			}
			r.Report(w.pos, checkAtomics,
				"%s is annotated //colibri:singlewriter with writer %s (first write at %s): a second writing function breaks the single-writer contract — route the write through the owner or drop the annotation",
				obj.Name(), first.fn, r.PosString(first.pos))
		}
	}
}

// collectAnnotated indexes struct fields and package-level vars carrying a
// //colibri:singlewriter annotation in their doc or trailing comment.
func (c *atomicsCheck) collectAnnotated(f *ast.File, p *Pkg, out map[types.Object]bool) {
	mark := func(names []*ast.Ident) {
		for _, name := range names {
			if obj := p.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				if commentGroupHas(field.Doc, "//colibri:singlewriter") ||
					commentGroupHas(field.Comment, "//colibri:singlewriter") {
					mark(field.Names)
				}
			}
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			declAnn := commentGroupHas(n.Doc, "//colibri:singlewriter")
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if declAnn || commentGroupHas(vs.Doc, "//colibri:singlewriter") ||
					commentGroupHas(vs.Comment, "//colibri:singlewriter") {
					mark(vs.Names)
				}
			}
		}
		return true
	})
}

func commentGroupHas(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// addrOperandObj resolves the &target first operand of a legacy atomic call
// to the object it addresses (a struct field or variable), registering the
// identifiers that form the operand so the plain-access scan skips them.
func addrOperandObj(call *ast.CallExpr, info *types.Info, operands map[*ast.Ident]bool) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	un, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	var obj types.Object
	switch x := un.X.(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.IndexExpr:
		if sel, ok := x.X.(*ast.SelectorExpr); ok {
			obj = info.Uses[sel.Sel]
		}
	}
	if obj == nil {
		return nil
	}
	ast.Inspect(un, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			operands[id] = true
		}
		return true
	})
	return obj
}

// typedAtomicCall classifies call as a method call on a sync/atomic typed
// value reached through a field/var selector, returning the field/var object
// and the method name.
func typedAtomicCall(call *ast.CallExpr, info *types.Info) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	selInfo, ok := info.Selections[sel]
	if !ok {
		return nil, ""
	}
	fn, ok := selInfo.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, ""
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		return info.Uses[x.Sel], sel.Sel.Name
	case *ast.Ident:
		return info.Uses[x], sel.Sel.Name
	case *ast.IndexExpr:
		if inner, ok := x.X.(*ast.SelectorExpr); ok {
			return info.Uses[inner.Sel], sel.Sel.Name
		}
	}
	return nil, sel.Sel.Name
}

// typedAtomicFor suggests the typed replacement for a raw target's type.
func typedAtomicFor(t types.Type) string {
	switch b := t.Underlying().(type) {
	case *types.Basic:
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64, types.Int:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64, types.Uint, types.Uintptr:
			return "Uint64"
		}
	case *types.Pointer:
		return "Pointer[T]"
	}
	return "Int64/Uint64/Pointer"
}

// isConstructorName reports whether a function is a pre-publication
// constructor by the tree's convention.
func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// qualifiedFuncName renders a stable writer identity: pkg.Func or
// pkg.(Recv).Method.
func qualifiedFuncName(p *Pkg, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv := exprKeyNoPos(fd.Recv.List[0].Type)
		name = "(" + recv + ")." + name
	}
	return p.Name + "." + name
}

// exprKeyNoPos renders a receiver type expression without needing a
// FileSet-relative position (receiver types are simple: T or *T).
func exprKeyNoPos(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + exprKeyNoPos(e.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return exprKeyNoPos(e.X)
	}
	return "?"
}

// lockRanges approximates the critical sections of one function as line
// intervals: a sync Lock/RLock opens a section that the matching Unlock
// closes; a deferred Unlock extends the section to the end of the function.
// Lexical, not path-sensitive — the allowance it feeds (rule 1) only needs
// to recognize the straightforward lock-guard idiom, and anything cleverer
// should use //colibri:allow(atomics) with a justification.
type lockRanges struct {
	open  []int // line of each Lock whose Unlock was not yet seen
	spans [][2]int
	end   int
}

func (lr *lockRanges) holds(line int) bool {
	for _, s := range lr.spans {
		if s[0] <= line && line <= s[1] {
			return true
		}
	}
	for _, o := range lr.open {
		if o <= line && line <= lr.end {
			return true
		}
	}
	return false
}

func lockSections(fd *ast.FuncDecl, p *Pkg, fset *token.FileSet) *lockRanges {
	lr := &lockRanges{}
	type ev struct {
		line int
		kind string // "lock", "unlock", "defer-unlock"
	}
	var evs []ev
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch n := n.(type) {
		case *ast.DeferStmt:
			call, deferred = n.Call, true
			deferredCalls[n.Call] = true
		case *ast.CallExpr:
			if deferredCalls[n] {
				return true // already classified via its DeferStmt
			}
			call = n
		default:
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind := ""
		switch sel.Sel.Name {
		case "Lock", "RLock":
			kind = "lock"
		case "Unlock", "RUnlock":
			kind = "unlock"
			if deferred {
				kind = "defer-unlock"
			}
		default:
			return true
		}
		if selInfo, ok := p.Info.Selections[sel]; ok {
			if m, ok := selInfo.Obj().(*types.Func); ok && (m.Pkg() == nil || m.Pkg().Path() != "sync") {
				return true
			}
		}
		evs = append(evs, ev{line: fset.Position(call.Pos()).Line, kind: kind})
		return true
	})
	sort.Slice(evs, func(i, j int) bool { return evs[i].line < evs[j].line })
	lr.end = fset.Position(fd.Body.End()).Line
	for _, e := range evs {
		switch e.kind {
		case "lock":
			lr.open = append(lr.open, e.line)
		case "defer-unlock":
			// The section spans from the lock to the function's end; leave
			// the lock open.
		case "unlock":
			if n := len(lr.open); n > 0 {
				lr.spans = append(lr.spans, [2]int{lr.open[n-1], e.line})
				lr.open = lr.open[:n-1]
			}
		}
	}
	return lr
}
