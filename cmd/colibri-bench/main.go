// Command colibri-bench regenerates the tables and figures of the paper's
// evaluation and prints them in the same shape.
//
// Usage:
//
//	colibri-bench [-quick] [-duration 300ms] [-telemetry text|json] [-parallel N,...] [-workers N,...] [-flows N] [fig3|fig4|fig5|fig6|table2|appendix-e|doc|ablations|chaos|scale|cplane|storm|policies|all]
//
// policies runs the reservation-model head-to-head (bounded-tube vs
// flyover vs hummingbird behind policy.Policy): setup/renewal latency, hop
// operations and the DoC-flood outcome per model and engine shard count.
//
// storm drives the §4.2 renewal storm through the live CPlane-backed
// request path: -flows EERs (default 10⁶) all renewing in one 4 s window
// across a CServ crash and recovery, swept over the -workers counts.
//
// With -quick, reduced parameter grids keep the total runtime under a
// minute; the default grids match the paper's sweeps (fig5/fig6 with
// r = 2^20 build million-entry gateways and take several minutes).
//
// fig6 additionally sweeps the RSS-sharded multi-core pipeline
// (router.Sharded / gateway.Sharded, 8 flow shards) over the worker counts
// from -workers (default 1,2,4,8), reporting aggregate and per-worker-
// normalized Mpps.
//
// The scale experiment sweeps the netsim engines over generated 100- and
// 1000-AS topologies: a sequential baseline, then the safe-window parallel
// engine at each worker count from -parallel (default 1,2,4,8), after
// proving the run bit-identical across engines.
//
// With -telemetry, the experiments' internal instruments (gateway phase
// latency histograms, router drop counters, simulated queue depths) are
// collected and dumped at exit in the chosen format.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"colibri/internal/experiments"
	"colibri/internal/telemetry"
)

// parseWorkers parses the -parallel worker-count list.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("worker count %d < 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	quick := flag.Bool("quick", false, "reduced parameter grids")
	dur := flag.Duration("duration", 300*time.Millisecond, "measurement time per data-plane point")
	telFmt := flag.String("telemetry", "", "dump internal instruments at exit: text or json")
	parallel := flag.String("parallel", "1,2,4,8", "comma-separated worker counts for the scale experiment")
	shardedWorkers := flag.String("workers", "1,2,4,8", "comma-separated worker counts for fig6's sharded-pipeline and storm sweeps")
	stormFlows := flag.Int("flows", 1_000_000, "EER population for the storm experiment")
	flag.Parse()

	workers, err := parseWorkers(*parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -parallel %q: %v\n", *parallel, err)
		os.Exit(2)
	}
	fig6Workers, err := parseWorkers(*shardedWorkers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -workers %q: %v\n", *shardedWorkers, err)
		os.Exit(2)
	}

	var reg *telemetry.Registry
	switch *telFmt {
	case "":
	case "text", "json":
		reg = telemetry.NewRegistry("bench")
		experiments.EnableTelemetry(reg)
	default:
		fmt.Fprintf(os.Stderr, "unknown -telemetry format %q (want text or json)\n", *telFmt)
		os.Exit(2)
	}

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	ran := false
	run := func(name string, fn func()) {
		if what == "all" || what == name {
			fn()
			fmt.Println()
			ran = true
		}
	}

	run("fig3", func() {
		existing, ratios, samples := experiments.Fig3Existing, experiments.Fig3Ratios, 100
		if *quick {
			existing, samples = []int{0, 5000, 10000}, 50
		}
		fmt.Print(experiments.FormatFig3(experiments.RunFig3(existing, ratios, samples)))
	})
	run("fig4", func() {
		existing, segrs, samples := experiments.Fig4Existing, experiments.Fig4SegRs, 100
		if *quick {
			existing, segrs, samples = []int{10, 1000, 100_000}, []int{1, 10_000}, 50
		}
		fmt.Print(experiments.FormatFig4(experiments.RunFig4(existing, segrs, samples)))
	})
	run("fig5", func() {
		hops, rs := experiments.Fig5Hops, experiments.Fig5Reservations
		if *quick {
			hops, rs = []int{2, 4, 16}, []int{1, 1 << 15, 1 << 17}
		}
		fmt.Print(experiments.FormatFig5(experiments.RunFig5(hops, rs, *dur)))
	})
	run("fig6", func() {
		workers, rs := experiments.Fig6Workers, []int{1, 1 << 15, 1 << 20}
		if *quick {
			workers, rs = []int{1, 4, 16}, []int{1 << 15}
		}
		fmt.Print(experiments.FormatFig6(experiments.RunFig6(workers, rs, *dur)))
		fmt.Println()
		sw := fig6Workers
		if *quick {
			sw = []int{1, 4}
		}
		fmt.Print(experiments.FormatFig6Sharded(experiments.RunFig6Sharded(sw, *dur)))
	})
	run("table2", func() {
		fmt.Print(experiments.FormatTable2(experiments.RunTable2()))
	})
	run("appendix-e", func() {
		fmt.Print(experiments.FormatAppE(experiments.RunAppendixE(nil, *dur)))
	})
	run("doc", func() {
		fmt.Print(experiments.FormatDoC(experiments.RunDoC()))
	})
	run("ablations", func() {
		fmt.Print(experiments.FormatAblations(experiments.RunAblations(*dur)))
	})
	run("chaos", func() {
		cfg := experiments.ChaosConfig{}
		if *quick {
			cfg = experiments.ChaosConfig{
				Seed: 7, Loss: 0.05, Seconds: 25, Flows: 2, PktPerSec: 2,
				CrashFrom: 4, CrashTo: 21,
			}
		}
		r, err := experiments.RunChaos(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatChaos(r))
	})
	run("cplane", func() {
		cfg := experiments.CPlaneConfig{}
		if *quick {
			cfg.Sizes = []int{1_000, 10_000}
			cfg.Shards = []int{1, 4}
		}
		rows, err := experiments.RunCPlane(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cplane: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatCPlane(rows))
	})
	run("storm", func() {
		cfg := experiments.StormConfig{Flows: *stormFlows, Workers: fig6Workers}
		if *quick {
			cfg.Flows = 10_000
			cfg.Workers = []int{1, 4}
		}
		r, err := experiments.RunStorm(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "storm: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatStorm(r))
	})
	run("policies", func() {
		cfg := experiments.PoliciesConfig{}
		if *quick {
			cfg = experiments.PoliciesConfig{
				Flows: 256, Hops: 3, Waves: 3, AttackFlows: 64, Shards: []int{1, 4},
			}
		}
		rows, err := experiments.RunPolicies(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "policies: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatPolicies(rows))
	})
	run("scale", func() {
		sizes := []int{100, 1000}
		if *quick {
			sizes = []int{100}
		}
		for _, ases := range sizes {
			cfg := experiments.ScaleConfig{ASes: ases, Workers: workers, Verify: true}
			if *quick {
				cfg.DurationNs = 20e6
			}
			r, err := experiments.RunScale(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scale: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(experiments.FormatScale(r))
			fmt.Println()
		}
	})
	if !ran {
		fmt.Fprintf(os.Stderr,
			"unknown experiment %q (want fig3|fig4|fig5|fig6|table2|appendix-e|doc|ablations|chaos|scale|cplane|storm|policies|all)\n", what)
		os.Exit(2)
	}
	if reg != nil {
		snap := reg.Snapshot()
		fmt.Println("— telemetry —")
		if *telFmt == "json" {
			if err := telemetry.WriteJSON(os.Stdout, snap); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
				os.Exit(1)
			}
		} else if err := telemetry.WriteText(os.Stdout, snap); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			os.Exit(1)
		}
	}
}
