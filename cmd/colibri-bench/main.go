// Command colibri-bench regenerates the tables and figures of the paper's
// evaluation and prints them in the same shape.
//
// Usage:
//
//	colibri-bench [-quick] [-duration 300ms] [fig3|fig4|fig5|fig6|table2|appendix-e|all]
//
// With -quick, reduced parameter grids keep the total runtime under a
// minute; the default grids match the paper's sweeps (fig5/fig6 with
// r = 2^20 build million-entry gateways and take several minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"colibri/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced parameter grids")
	dur := flag.Duration("duration", 300*time.Millisecond, "measurement time per data-plane point")
	flag.Parse()

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	ran := false
	run := func(name string, fn func()) {
		if what == "all" || what == name {
			fn()
			fmt.Println()
			ran = true
		}
	}

	run("fig3", func() {
		existing, ratios, samples := experiments.Fig3Existing, experiments.Fig3Ratios, 100
		if *quick {
			existing, samples = []int{0, 5000, 10000}, 50
		}
		fmt.Print(experiments.FormatFig3(experiments.RunFig3(existing, ratios, samples)))
	})
	run("fig4", func() {
		existing, segrs, samples := experiments.Fig4Existing, experiments.Fig4SegRs, 100
		if *quick {
			existing, segrs, samples = []int{10, 1000, 100_000}, []int{1, 10_000}, 50
		}
		fmt.Print(experiments.FormatFig4(experiments.RunFig4(existing, segrs, samples)))
	})
	run("fig5", func() {
		hops, rs := experiments.Fig5Hops, experiments.Fig5Reservations
		if *quick {
			hops, rs = []int{2, 4, 16}, []int{1, 1 << 15, 1 << 17}
		}
		fmt.Print(experiments.FormatFig5(experiments.RunFig5(hops, rs, *dur)))
	})
	run("fig6", func() {
		workers, rs := experiments.Fig6Workers, []int{1, 1 << 15, 1 << 20}
		if *quick {
			workers, rs = []int{1, 4, 16}, []int{1 << 15}
		}
		fmt.Print(experiments.FormatFig6(experiments.RunFig6(workers, rs, *dur)))
	})
	run("table2", func() {
		fmt.Print(experiments.FormatTable2(experiments.RunTable2()))
	})
	run("appendix-e", func() {
		fmt.Print(experiments.FormatAppE(experiments.RunAppendixE(nil, *dur)))
	})
	run("doc", func() {
		fmt.Print(experiments.FormatDoC(experiments.RunDoC()))
	})
	run("ablations", func() {
		fmt.Print(experiments.FormatAblations(experiments.RunAblations(*dur)))
	})
	if !ran {
		fmt.Fprintf(os.Stderr,
			"unknown experiment %q (want fig3|fig4|fig5|fig6|table2|appendix-e|doc|ablations|all)\n", what)
		os.Exit(2)
	}
}
