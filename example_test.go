package colibri_test

import (
	"fmt"
	"log"

	"colibri"
)

// Example_quickstart builds the paper's Fig. 1 topology, reserves segment
// bandwidth, and sends a packet over a host-to-host end-to-end reservation.
func Example_quickstart() {
	net, err := colibri.NewNetwork(colibri.TwoISDTopology(), colibri.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := net.AutoSetupSegRs(1 * colibri.Gbps); err != nil {
		log.Fatal(err)
	}
	src, _ := net.AddHost(colibri.MustIA(1, 11), 1)
	dst, _ := net.AddHost(colibri.MustIA(2, 11), 2)

	sess, err := src.RequestEER(dst, 8*colibri.Mbps)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Send([]byte("guaranteed")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reserved %d kbps over %d ASes, delivered %d packet(s)\n",
		sess.BandwidthKbps(), sess.PathLen(), dst.Received)
	// Output: reserved 8000 kbps over 5 ASes, delivered 1 packet(s)
}

// Example_attackDefense shows the blocklist reaction to a spoofing attempt:
// forged hop validation fields never pass the first border router.
func Example_attackDefense() {
	net, err := colibri.NewNetwork(colibri.TwoISDTopology(), colibri.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := net.AutoSetupSegRs(1 * colibri.Gbps); err != nil {
		log.Fatal(err)
	}
	src, _ := net.AddHost(colibri.MustIA(1, 11), 1)
	dst, _ := net.AddHost(colibri.MustIA(2, 11), 2)
	sess, err := src.RequestEER(dst, 1*colibri.Mbps)
	if err != nil {
		log.Fatal(err)
	}
	forged := sess.Grant().Stamp([]byte("evil"), net.Clock.NowNs(), true)
	if err := net.InjectPacket(forged, colibri.MustIA(1, 11)); err != nil {
		fmt.Println("forged packet dropped")
	}
	// Output: forged packet dropped
}
